"""Lint cost, cold vs warm vs parallel: what the runner machinery buys.

Not a paper experiment — release engineering for :mod:`repro.analysis`.
Measures a full ``opaq lint --deep`` over ``src/repro`` four ways:

* **uncached** — the baseline every run paid before v3;
* **cold** — first run with ``--cache`` (pays the baseline plus the
  serialisation cost of writing the cache);
* **warm** — second run against the populated cache (hash checks plus
  replay; no parsing, no CFGs, no fixpoints);
* **parallel cold** — first run with ``--jobs 2`` and a fresh cache:
  the per-module phase fans out over a process pool, the deep phase
  stays serial in the parent.

The budget the CI ``lint-deep`` job also enforces: **warm under half of
cold**.  In practice warm lands near a tenth.  The parallel row gets a
looser bar — on a single-core runner (this container, small CI shapes)
the pool is pure overhead, so the budget only caps that overhead at a
modest constant factor rather than demanding a speedup.  Byte-identical
output is asserted for every variant — a cache or a pool that bought
speed by drifting would be worse than no cache.

Run as a script to (re)generate the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_lint.py

which writes ``BENCH_lint.json`` at the repo root, or through
pytest-benchmark like the other benches for ``--benchmark-json`` output.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.analysis import lint_paths, render_text

try:  # pytest-benchmark path; absent when run as a plain script
    from benchmarks.conftest import run_once
except ImportError:  # pragma: no cover - script mode
    run_once = None

_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
_OUT = Path(__file__).resolve().parent.parent / "BENCH_lint.json"

#: Ceiling on parallel-cold over serial-cold.  >1 is deliberate: with
#: one core the pool cannot win, and the point of the row is to keep the
#: process-pool overhead (spawn, pickling, replay) honest, not to
#: require hardware CI does not have.
_PARALLEL_OVERHEAD_BUDGET = 1.5


def _timed_lint(cache: Path | None, jobs: int = 1) -> tuple[float, object]:
    start = time.perf_counter()
    result = lint_paths([_SRC], deep=True, cache=cache, jobs=jobs)
    return time.perf_counter() - start, result


def main() -> dict[str, object]:
    with tempfile.TemporaryDirectory() as td:
        cache = Path(td) / "opaqlint-cache.json"
        uncached_seconds, uncached = _timed_lint(None)
        cold_seconds, cold = _timed_lint(cache)
        warm_seconds, warm = _timed_lint(cache)
        cache_bytes = cache.stat().st_size
        par_cache = Path(td) / "opaqlint-cache-par.json"
        parallel_cold_seconds, parallel = _timed_lint(par_cache, jobs=2)
        # ... and a warm serial run over the parallel-written cache: the
        # interop the CI job leans on (SARIF step parallel, gate warm).
        parallel_warm_seconds, parallel_warm = _timed_lint(par_cache)

    texts = [render_text(r) for r in (uncached, cold, warm, parallel, parallel_warm)]
    assert len(set(texts)) == 1, "runner variants drifted"
    stats = warm.cache_stats
    assert stats is not None and stats.files_reused == stats.files_total
    par_stats = parallel_warm.cache_stats
    assert par_stats is not None
    assert par_stats.files_reused == par_stats.files_total

    report = {
        "benchmark": "lint_deep_cache",
        "files": warm.files_checked,
        "deep_rules": stats.deep_rules_total,
        "uncached_seconds": uncached_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_over_cold": warm_seconds / cold_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cache_bytes": cache_bytes,
        "parallel_jobs": 2,
        "parallel_cold_seconds": parallel_cold_seconds,
        "parallel_warm_seconds": parallel_warm_seconds,
        "parallel_over_cold": parallel_cold_seconds / cold_seconds,
    }
    _OUT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"lint --deep over {report['files']} files: "
        f"uncached {uncached_seconds:.2f}s, cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s ({report['speedup']:.1f}x), "
        f"jobs=2 cold {parallel_cold_seconds:.2f}s"
    )
    print(f"wrote {_OUT}")
    return report


def bench_lint_cold_vs_warm(benchmark):
    """One full sweep under pytest-benchmark (headline numbers in extra_info)."""
    report = run_once(benchmark, main)
    benchmark.extra_info["cold_seconds"] = report["cold_seconds"]
    benchmark.extra_info["warm_seconds"] = report["warm_seconds"]
    benchmark.extra_info["speedup"] = report["speedup"]
    benchmark.extra_info["parallel_cold_seconds"] = report[
        "parallel_cold_seconds"
    ]
    # The whole point of the cache; CI enforces the same budget.
    assert report["warm_over_cold"] < 0.5
    # The pool must stay near-free even where it cannot win (one core).
    assert report["parallel_over_cold"] < _PARALLEL_OVERHEAD_BUDGET


if __name__ == "__main__":
    main()
