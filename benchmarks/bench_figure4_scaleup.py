"""Figure 4: scale-up — total time versus processors at fixed n/p.

Paper claim: the curves are near-flat because the only parallel overhead,
the global merge, is a tiny fraction of the total.
"""

from benchmarks.conftest import run_once
from repro.experiments import figure4, resolve_n


def bench_figure4(benchmark, show):
    result = run_once(benchmark, figure4)
    show(result)
    for s in (resolve_n(500_000), resolve_n(4_000_000)):
        ratio = result.paper_reference[f"scaleup_ratio_{s}"]
        assert ratio < 1.15  # p=16 at most 15% slower than p=1
    benchmark.extra_info.update(
        {k: v for k, v in result.paper_reference.items() if k.startswith("scaleup")}
    )
