"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at the active
scale (CI scale by default; ``REPRO_FULL=1`` for the paper's sizes), prints
it in the paper's layout, asserts the shape claims, and records headline
numbers in ``benchmark.extra_info`` so ``--benchmark-json`` output carries
the reproduction data.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print a rendered table, visibly separated from pytest's output."""

    def _show(table_result) -> None:
        print()
        print(table_result.render())

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are full sweeps (seconds each); statistical rounds
    would multiply the suite's runtime for no insight — the interesting
    numbers are *inside* the tables, not the wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
