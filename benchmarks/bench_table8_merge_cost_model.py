"""Table 8: the analytic cost formulas of the two global merges.

Paper claim: bitonic merge is preferable for small machines/lists, sample
merge for large ones.  This bench evaluates the closed-form model and
cross-checks it against the executed simulation.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import table8
from repro.parallel import (
    MachineModel,
    SimulatedMachine,
    predict_merge_time,
    sample_merge,
)


def bench_table8(benchmark, show):
    result = run_once(benchmark, table8)
    show(result)
    model = MachineModel.sp2()
    # Small list, small p: bitonic wins.
    assert predict_merge_time(2, 125, model, "bitonic") < predict_merge_time(
        2, 125, model, "sample"
    )
    # Large list, large p: sample merge wins.
    assert predict_merge_time(16, 16000, model, "sample") < predict_merge_time(
        16, 16000, model, "bitonic"
    )
    # The model tracks the executed simulation within a small factor.
    rng = np.random.default_rng(0)
    machine = SimulatedMachine(8, model)
    sample_merge([np.sort(rng.uniform(size=4096)) for _ in range(8)], machine)
    ratio = machine.elapsed() / predict_merge_time(8, 4096, model, "sample")
    assert 0.2 < ratio < 5.0
    benchmark.extra_info["sim_over_model_ratio"] = ratio
