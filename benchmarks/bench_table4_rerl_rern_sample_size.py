"""Table 4: RERL and RERN versus sample size (uniform and Zipf, n=1M).

Paper claim: both rates roughly halve as ``s`` doubles and respect the
``q/s·100`` analytic bound.
"""

from benchmarks.conftest import run_once
from repro.experiments import opaq_error_report, resolve_n, table4
from repro.metrics import rerl_bound, rern_bound


def bench_table4(benchmark, show):
    result = run_once(benchmark, table4)
    show(result)
    n = resolve_n(1_000_000)
    for dist in ("uniform", "zipf"):
        rerls, rerns = [], []
        for s in (250, 500, 1000):
            rep = opaq_error_report(dist, n, s)
            assert rep.rerl <= rerl_bound(10, s)
            assert rep.rern <= rern_bound(10, s)
            rerls.append(rep.rerl)
            rerns.append(rep.rern)
        assert rerls[0] > rerls[2]
        assert rerns[0] > rerns[2]
    rep1000 = opaq_error_report("uniform", n, 1000)
    benchmark.extra_info["rerl_s1000_uniform"] = rep1000.rerl
    benchmark.extra_info["rern_s1000_uniform"] = rep1000.rern
    benchmark.extra_info["paper_rerl_s1000_uniform"] = 0.46
    benchmark.extra_info["paper_rern_s1000_uniform"] = 0.60
