"""Table 7: OPAQ versus [AS95] and random sampling at equal memory.

Paper claim: OPAQ is comparable or better — and, crucially, the only one
of the three whose error carries a deterministic bound.  On randomly
ordered stationary data the interval method interpolates very well (see
the note in EXPERIMENTS.md); the structural claim checked here is that
OPAQ respects its bound while the competitors' errors are unbounded in
principle (the sorted-arrival ablation shows them failing).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import PAPER_RUNS, table7
from repro.metrics import rera_bound


def bench_table7(benchmark, show):
    result = run_once(benchmark, table7)
    show(result)
    opaq_cols = [row for row in result.rows]
    # OPAQ columns are 1 and 4 (uniform, zipf); assert bound compliance.
    s = 3000 // PAPER_RUNS
    for row in opaq_cols:
        assert float(row[1]) <= rera_bound(s) + 0.005
        assert float(row[4]) <= rera_bound(s) + 0.005
    # Random sampling is typically the loosest of the three.
    rsamp = np.array([float(r[3]) for r in result.rows])
    opaq = np.array([float(r[1]) for r in result.rows])
    assert opaq.mean() <= rsamp.mean() + 0.05
    benchmark.extra_info["opaq_mean"] = float(opaq.mean())
    benchmark.extra_info["rsamp_mean"] = float(rsamp.mean())
    benchmark.extra_info["paper_claim"] = "OPAQ comparable or better, only OPAQ bounded"
