"""Ablation A3: run size versus accuracy at a fixed memory budget.

The constraint ``r·s + m <= M`` trades run buffer against sample list:
small runs leave room for large ``s`` (tighter bounds) but cost more merge
work; large runs the reverse.  This sweeps the frontier the paper's
section 2.3 describes.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OPAQ, OPAQConfig, bounds_for
from repro.experiments import TableResult
from repro.metrics import dectile_fractions, score_bounds
from repro.storage import MemoryModel


def _frontier():
    n, memory = 200_000, 30_000
    rng = np.random.default_rng(3)
    data = rng.uniform(size=n)
    sd = np.sort(data)
    model = MemoryModel(memory)
    result = TableResult(
        title=f"Ablation A3: run-size frontier at fixed memory (n={n:,}, M={memory:,})",
        header=["m (run)", "r", "max s", "n/s bound", "RERA max", "RERN"],
    )
    rows = []
    for m in (5_000, 10_000, 20_000, 25_000):
        r = -(-n // m)
        s_max = (memory - m) // r
        if s_max < 10:
            continue
        config = OPAQConfig(run_size=m, sample_size=min(s_max, m), memory=memory)
        model.validate(n, config.run_size, config.sample_size)
        summary = OPAQ(config).summarize(data)
        phis = dectile_fractions()
        bounds = bounds_for(summary, phis)
        rep = score_bounds(
            sd,
            phis,
            np.array([b.lower for b in bounds]),
            np.array([b.upper for b in bounds]),
            sample_size=config.sample_size,
        )
        rows.append((m, summary.guaranteed_rank_error(), rep))
        result.add_row(
            m,
            r,
            config.sample_size,
            summary.guaranteed_rank_error(),
            f"{rep.rera_max:.3f}",
            f"{rep.rern:.3f}",
        )
    result.paper_reference["rows"] = rows
    return result


def bench_run_size_frontier(benchmark, show):
    result = run_once(benchmark, _frontier)
    show(result)
    rows = result.paper_reference["rows"]
    assert len(rows) >= 3
    # Every point on the frontier honours its own bound.
    for _, _, rep in rows:
        assert rep.within_bounds()
    # Larger s (allowed by mid-sized runs) gives tighter guarantees than
    # the extreme points: check the guarantee is minimised in the middle.
    guarantees = [g for _, g, _ in rows]
    assert min(guarantees) < guarantees[-1]
    benchmark.extra_info["guarantees"] = guarantees
