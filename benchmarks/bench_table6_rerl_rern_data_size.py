"""Table 6: RERL and RERN versus data size (s=1000).

Paper claim: both rates are flat in ``n`` and near 0.5-0.6 %.
"""

from benchmarks.conftest import run_once
from repro.experiments import opaq_error_report, resolve_n, table6
from repro.metrics import rerl_bound, rern_bound


def bench_table6(benchmark, show):
    result = run_once(benchmark, table6)
    show(result)
    sizes = [resolve_n(n) for n in (1_000_000, 5_000_000, 10_000_000)]
    for dist in ("uniform", "zipf"):
        for n in sizes:
            rep = opaq_error_report(dist, n, 1000)
            assert rep.rerl <= rerl_bound(10, 1000)
            assert rep.rern <= rern_bound(10, 1000)
    rep = opaq_error_report("uniform", sizes[0], 1000)
    benchmark.extra_info["rerl_1M_uniform"] = rep.rerl
    benchmark.extra_info["paper_rerl_1M_uniform"] = 0.46
