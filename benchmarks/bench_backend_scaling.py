"""Backend scaling: real cores vs the cost model (Tables 11-12 analogue).

Not a paper experiment — release engineering for
:mod:`repro.parallel.backends`.  The paper measured POPAQ on a 16-node
SP/2; this repo normally *simulates* that machine.  This benchmark runs
the identical SPMD program on the real execution backends and asks the
two questions the simulation cannot answer alone:

* **speed-up** — at fixed ``n``, how does wall-clock fall as ``p`` grows
  on the ``thread`` and ``process`` backends, against the ``serial``
  reference and against the simulated prediction (paper Figure 6)?
* **size-up** — growing ``n`` with ``p`` (``n/p`` fixed), does wall-clock
  stay flat (paper Figure 5)?

Every row carries both *measured* per-phase seconds (workers timing
themselves with ``time.perf_counter``) and the *modelled* replay of the
same run layout through :class:`~repro.parallel.machine.SimulatedMachine`,
so the committed JSON mirrors the paper's phase-fraction tables twice:
once as the model predicts, once as the hardware delivers.

Honesty note: real speed-up needs real cores.  The JSON records
``cores`` (``os.cpu_count()``); on a single-core box the measured
process-backend speed-up hovers near 1x (or below — fork and queue
overhead is real) while the *modelled* speed-up shows what the same
program does on ``p`` actual processors.  The pytest wrapper therefore
always asserts the modelled sample-phase speed-up at ``p=4`` is >= 2x,
and additionally asserts it for the *measured* numbers only when the
machine has at least 4 cores.

Run as a script to (re)generate the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py

which writes ``BENCH_backends.json`` at the repo root, or through
pytest-benchmark like the other benches for ``--benchmark-json`` output.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import OPAQConfig
from repro.parallel import ParallelOPAQ

try:  # pytest-benchmark path; absent when run as a plain script
    from benchmarks.conftest import run_once
except ImportError:  # pragma: no cover - script mode
    run_once = None

_N = 1_000_000
_PROCS = (1, 2, 4, 8)
_BACKENDS = ("serial", "thread", "process")
_PHIS = (0.25, 0.5, 0.75)
#: The paper's "sample phase" = the per-processor local pass.
_SAMPLE_PHASES = ("io", "sampling", "local_merge")
_OUT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"


def _config(kernel: str = "numpy") -> OPAQConfig:
    return OPAQConfig(run_size=100_000, sample_size=1_000, kernel=kernel)


def _sample_phase_seconds(phase_seconds: dict[str, float]) -> float:
    return sum(phase_seconds.get(phase, 0.0) for phase in _SAMPLE_PHASES)


def _measure(
    backend: str, p: int, data: np.ndarray, kernel: str = "numpy"
) -> dict[str, object]:
    """One real execution: wall-clock, measured and modelled phases."""
    popaq = ParallelOPAQ(p, _config(kernel), backend=backend)
    start = time.perf_counter()
    result = popaq.run(data, _PHIS)
    wall = time.perf_counter() - start

    machine = result.machine
    reports = result.worker_reports or []
    measured_sample = max(
        (_sample_phase_seconds(r.phase_seconds) for r in reports),
        default=0.0,
    )
    modelled_sample = max(
        _sample_phase_seconds(machine.phases(proc).times)
        for proc in range(p)
    )
    return {
        "backend": backend,
        "p": p,
        "elements": int(data.size),
        "kernel": kernel,
        "wall_seconds": wall,
        "measured_phase_seconds": result.measured_phase_totals(),
        "measured_phase_fractions": result.measured_phase_fractions(),
        "measured_sample_phase_seconds": measured_sample,
        "modelled_total_seconds": result.total_time,
        "modelled_phase_fractions": result.phase_fractions(),
        "modelled_sample_phase_seconds": modelled_sample,
    }


def _speedup_sweep(data: np.ndarray) -> list[dict[str, object]]:
    """Fixed ``n``, growing ``p`` (Figure 6's real-hardware analogue)."""
    rows = []
    baselines: dict[str, dict[str, object]] = {}
    for backend in _BACKENDS:
        for p in _PROCS:
            row = _measure(backend, p, data)
            base = baselines.setdefault(backend, row)  # the p=1 row
            row["speedup_vs_p1"] = (
                float(base["wall_seconds"]) / float(row["wall_seconds"])
            )
            row["measured_sample_phase_speedup"] = _ratio(
                base["measured_sample_phase_seconds"],
                row["measured_sample_phase_seconds"],
            )
            row["modelled_sample_phase_speedup"] = _ratio(
                base["modelled_sample_phase_seconds"],
                row["modelled_sample_phase_seconds"],
            )
            rows.append(row)
    serial = {r["p"]: r for r in rows if r["backend"] == "serial"}
    for row in rows:
        row["speedup_vs_serial"] = _ratio(
            serial[row["p"]]["wall_seconds"], row["wall_seconds"]
        )
    return rows


def _sizeup_sweep(rng: np.random.Generator) -> list[dict[str, object]]:
    """``n/p`` fixed, growing both (Figure 5's real-hardware analogue)."""
    per_proc = _N // max(_PROCS)
    rows = []
    base: dict[str, dict[str, object]] = {}
    for backend in _BACKENDS:
        for p in _PROCS:
            data = rng.uniform(size=per_proc * p)
            row = _measure(backend, p, data)
            first = base.setdefault(backend, row)
            # Perfect size-up holds at 1.0: p-fold data, p-fold cores,
            # flat wall-clock.
            row["sizeup_ratio"] = (
                float(row["wall_seconds"]) / float(first["wall_seconds"])
            )
            rows.append(row)
    return rows


def _kernel_rows(data: np.ndarray) -> list[dict[str, object]]:
    """python-vs-numpy sampling kernels on the serial reference."""
    rows = [_measure("serial", 1, data, kernel=k) for k in ("python", "numpy")]
    python, numpy_row = rows
    numpy_row["kernel_speedup_vs_python"] = _ratio(
        python["wall_seconds"], numpy_row["wall_seconds"]
    )
    return rows


def _ratio(num: object, den: object) -> float | None:
    num, den = float(num), float(den)  # type: ignore[arg-type]
    return num / den if den else None


def main() -> dict[str, object]:
    rng = np.random.default_rng(11)
    data = rng.uniform(size=_N)
    speedup = _speedup_sweep(data)
    sizeup = _sizeup_sweep(rng)
    kernels = _kernel_rows(data)
    report = {
        "benchmark": "backend_scaling",
        "elements": _N,
        "cores": os.cpu_count(),
        "backends": list(_BACKENDS),
        "procs": list(_PROCS),
        "speedup": speedup,
        "sizeup": sizeup,
        "kernels": kernels,
    }
    _OUT.write_text(json.dumps(report, indent=2) + "\n")
    for row in speedup:
        print(
            f"{row['backend']:>7} p={row['p']}: "
            f"{row['wall_seconds']:.3f}s wall, "
            f"speed-up x{row['speedup_vs_p1']:.2f} vs p=1, "
            f"sample phase x{row['modelled_sample_phase_speedup']:.2f} "
            f"modelled / x{row['measured_sample_phase_speedup']:.2f} measured"
        )
    print(f"cores={report['cores']}; wrote {_OUT}")
    return report


def bench_backend_scaling(benchmark):
    """One full sweep under pytest-benchmark (headline numbers in extra_info)."""
    report = run_once(benchmark, main)
    by_key = {
        (row["backend"], row["p"]): row for row in report["speedup"]
    }
    process_p4 = by_key[("process", 4)]
    benchmark.extra_info["cores"] = report["cores"]
    benchmark.extra_info["process_p4_speedup_vs_serial"] = process_p4[
        "speedup_vs_serial"
    ]
    benchmark.extra_info["process_p4_modelled_sample_speedup"] = process_p4[
        "modelled_sample_phase_speedup"
    ]
    # The cost-model replay of the real run layout must show the paper's
    # near-linear sample phase regardless of local hardware.
    assert process_p4["modelled_sample_phase_speedup"] >= 2.0
    if (report["cores"] or 1) >= 4:
        # Real cores available: demand real speed-up (the ISSUE's bar).
        assert process_p4["measured_sample_phase_speedup"] >= 2.0
        assert process_p4["speedup_vs_serial"] > 1.0


if __name__ == "__main__":
    main()
