"""Ablation A5: the section-4 extensions.

* Exact two-pass refinement: how much extra I/O and memory does exactness
  cost over the one-pass bounds?  (Paper: one extra pass, <= 2n/s keys.)
* Incremental maintenance: merging per-batch summaries must match a full
  recompute bit-for-bit while touching only the new data.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OPAQ, IncrementalOPAQ, OPAQConfig, exact_quantiles
from repro.experiments import TableResult
from repro.metrics import dectile_fractions
from repro.workloads import UniformGenerator, write_dataset


def _extensions(tmpdir):
    n = 100_000
    config = OPAQConfig(run_size=10_000, sample_size=500)
    ds = write_dataset(tmpdir / "ext.opaq", UniformGenerator(), n, seed=23)
    result = TableResult(
        title=f"Ablation A5: section-4 extensions (n={n:,}, s=500)",
        header=["extension", "metric", "value"],
    )

    # Exact two-pass refinement.
    phis = dectile_fractions()
    values, bounds, summary = exact_quantiles(ds, phis, config)
    sd = np.sort(ds.read_all())
    assert all(values[i] == sd[bounds[i].rank - 1] for i in range(len(bounds)))
    window_total = sum(b.max_between for b in bounds)
    result.add_row("exact 2-pass", "extra passes", 1)
    result.add_row("exact 2-pass", "worst window (keys)", max(b.max_between for b in bounds))
    result.add_row("exact 2-pass", "window bound 2n/s", 2 * n // 500)

    # Incremental merge vs recompute.
    data = ds.read_all()
    inc = IncrementalOPAQ(config)
    for i in range(0, n, 20_000):
        inc.update(data[i : i + 20_000])
    full = OPAQ(config).summarize(data)
    identical = np.array_equal(np.sort(inc.summary.samples), np.sort(full.samples))
    result.add_row("incremental", "merged == recomputed", identical)
    result.add_row("incremental", "batches", inc.batches)
    result.paper_reference["identical"] = identical
    result.paper_reference["windows"] = [b.max_between for b in bounds]
    return result


def bench_extensions(benchmark, show, tmp_path):
    result = run_once(benchmark, _extensions, tmp_path)
    show(result)
    assert result.paper_reference["identical"]
    n, s = 100_000, 500
    assert max(result.paper_reference["windows"]) <= 2 * n // s
    benchmark.extra_info["worst_window"] = max(result.paper_reference["windows"])
