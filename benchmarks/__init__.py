"""Reproduction benchmarks: one module per table/figure of the paper."""
