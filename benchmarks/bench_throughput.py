"""Library throughput: what a downstream user pays per key and per query.

Not a paper experiment — release engineering.  Measures the real wall
time of the one-pass summary build (keys/second) and of the quantile
phase (queries/second), which are the two numbers an adopter sizes their
pipeline with.
"""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig, bounds_for
from repro.metrics import dectile_fractions

_N = 2_000_000


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(7).uniform(size=_N)


@pytest.fixture(scope="module")
def summary(data):
    config = OPAQConfig(run_size=_N // 10, sample_size=1000)
    return OPAQ(config).summarize(data)


def bench_summarize_throughput(benchmark, data):
    config = OPAQConfig(run_size=_N // 10, sample_size=1000)
    opaq = OPAQ(config)
    result = benchmark(opaq.summarize, data)
    assert result.count == _N
    keys_per_second = _N / benchmark.stats["mean"]
    benchmark.extra_info["keys_per_second"] = keys_per_second
    # Regression floor: a pure-numpy sample phase should sustain millions
    # of keys per second even on one modest core.
    assert keys_per_second > 1e6


def bench_quantile_query_throughput(benchmark, summary):
    phis = dectile_fractions()

    def nine_queries():
        return bounds_for(summary, phis)

    bounds = benchmark(nine_queries)
    assert len(bounds) == 9
    queries_per_second = 9 / benchmark.stats["mean"]
    benchmark.extra_info["queries_per_second"] = queries_per_second
    assert queries_per_second > 10_000
