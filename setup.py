"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (``pip install -e .``) cannot build; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work with plain
setuptools.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
