#!/usr/bin/env python3
"""Check markdown cross-references in the repo docs (stdlib only).

Scans ``README.md`` and ``docs/*.md`` (or the paths given on the
command line) for inline markdown links and verifies every *internal*
reference:

* relative file targets must exist (resolved against the linking file);
* ``#anchor`` fragments — same-file or cross-file — must match a
  heading in the target document, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens, ``-1``/``-2``
  suffixes for duplicates).

External targets (``http://``, ``https://``, ``mailto:``) are not
fetched — this is a *consistency* check for the docs tree, meant to run
in CI (the ``docs-check`` job) and in tier-1 via
``tests/test_docs_links.py``.

It also keeps two registries honest against their prose catalogues:

* every ``OPQ###`` code defined in ``src/repro/analysis/rules_*.py``
  must be documented in ``docs/static_analysis.md``, and every code the
  doc mentions must still exist in a rule module;
* every engine registered in ``repro.portfolio.ENGINES`` must have a
  catalogue-table row in ``docs/portfolio.md`` (and vice versa), and
  every policy alias and serialisation magic the registry declares must
  be mentioned there.

Both registries are read *textually* (regexes over the sources) on
purpose: the docs-check CI job runs on a bare interpreter with no
dependencies installed, so this script must never import ``repro``.

Exit status: 0 when every reference resolves, 1 with one line per
dangling reference otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links and images: [text](target) — target captured lazily so
#: ``[a](b) and [c](d)`` yields two matches, not one.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")
#: GitHub slugging keeps word characters, spaces and hyphens; the rest
#: (backticks, dots, stars, parens, ...) is deleted.
_SLUG_DROP = re.compile(r"[^\w\- ]")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's anchor for a heading line (good enough for our docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop code spans, keep text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = _SLUG_DROP.sub("", text.lower())
    return text.strip().replace(" ", "-")


def anchors_in(path: Path) -> set[str]:
    """Every anchor a markdown file exposes (headings, GitHub rules)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def links_in(path: Path) -> list[str]:
    """Every inline link target in a markdown file (code blocks skipped)."""
    targets: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans may contain [x](y)-shaped text; drop them.
        stripped = re.sub(r"`[^`]*`", "", line)
        targets.extend(_LINK.findall(stripped))
    return targets


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Dangling references in one file, as human-readable strings."""
    problems: list[str] = []
    for target in links_in(path):
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            try:
                dest.relative_to(repo_root)
            except ValueError:
                problems.append(
                    f"{path}: link {target!r} escapes the repository"
                )
                continue
            if not dest.exists():
                problems.append(
                    f"{path}: broken link {target!r} ({dest} does not exist)"
                )
                continue
        else:
            dest = path
        if fragment:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown files: not checkable
            if fragment.lower() not in anchors_in(dest):
                problems.append(
                    f"{path}: dangling anchor {target!r} "
                    f"(no heading slugs to {fragment!r} in {dest.name})"
                )
    return problems


#: An OPQ code *definition* in a rule module: ``code = "OPQ251"``.
_CODE_DEF = re.compile(r'code\s*=\s*"(OPQ\d{3})"')
#: Any OPQ code mention in the catalogue document.
_CODE_MENTION = re.compile(r"\bOPQ\d{3}\b")


def registered_codes(repo_root: Path) -> set[str]:
    """Every OPQ code defined by a rule module (textual, import-free)."""
    codes: set[str] = set()
    rules_dir = repo_root / "src" / "repro" / "analysis"
    for path in sorted(rules_dir.glob("rules_*.py")):
        codes.update(_CODE_DEF.findall(path.read_text(encoding="utf-8")))
    return codes


def check_rule_catalogue(repo_root: Path) -> list[str]:
    """Both directions of the registry <-> docs/static_analysis.md sync."""
    doc = repo_root / "docs" / "static_analysis.md"
    if not doc.exists():
        return [f"{doc}: missing (the opaqlint rule catalogue)"]
    defined = registered_codes(repo_root)
    documented = set(_CODE_MENTION.findall(doc.read_text(encoding="utf-8")))
    problems = []
    for code in sorted(defined - documented):
        problems.append(
            f"{doc}: rule {code} is registered in src/repro/analysis but "
            "never documented — add it to the catalogue"
        )
    for code in sorted(documented - defined):
        problems.append(
            f"{doc}: documents {code}, but no rule module defines that "
            "code — remove it or restore the rule"
        )
    return problems


#: An engine registration in the portfolio registry:
#: ``"kll": EngineSpec(``.
_ENGINE_DEF = re.compile(r'"(\w+)":\s*EngineSpec\(')
#: A serialisation magic declared by an EngineSpec.
_MAGIC_DEF = re.compile(r'summary_magic="(\w+)"')
#: The ENGINE_POLICIES block and its ``"alias": "engine"`` pairs.
_POLICY_BLOCK = re.compile(r"ENGINE_POLICIES[^{]*\{(.*?)\}", re.DOTALL)
_POLICY_PAIR = re.compile(r'"([\w-]+)":\s*"(\w+)"')
#: A table row in docs/portfolio.md whose first cell names an engine:
#: ``| `kll` | ...``.
_CATALOGUE_ROW = re.compile(r"^\|\s*`(\w+)`\s*\|", re.MULTILINE)


def check_engine_catalogue(repo_root: Path) -> list[str]:
    """Both directions of the portfolio <-> docs/portfolio.md sync."""
    registry = repo_root / "src" / "repro" / "portfolio" / "__init__.py"
    doc = repo_root / "docs" / "portfolio.md"
    if not registry.exists():
        return [f"{registry}: missing (the engine registry)"]
    if not doc.exists():
        return [f"{doc}: missing (the engine catalogue)"]
    source = registry.read_text(encoding="utf-8")
    text = doc.read_text(encoding="utf-8")
    engines = set(_ENGINE_DEF.findall(source))
    rows = set(_CATALOGUE_ROW.findall(text))
    problems: list[str] = []
    for name in sorted(engines - rows):
        problems.append(
            f"{doc}: engine {name!r} is registered in repro.portfolio but "
            "has no catalogue-table row — document it"
        )
    for name in sorted(rows - engines):
        problems.append(
            f"{doc}: table row names engine {name!r}, but the registry "
            "does not define it — remove the row or add the engine"
        )
    for magic in sorted(set(_MAGIC_DEF.findall(source))):
        if f"`{magic}`" not in text:
            problems.append(
                f"{doc}: serialisation magic {magic!r} is declared by the "
                "registry but never mentioned — add it to the catalogue"
            )
    block = _POLICY_BLOCK.search(source)
    policies = dict(_POLICY_PAIR.findall(block.group(1))) if block else {}
    for alias, engine in sorted(policies.items()):
        if f"`{alias}`" not in text:
            problems.append(
                f"{doc}: policy alias {alias!r} (-> {engine!r}) is defined "
                "by ENGINE_POLICIES but never mentioned — add it to the "
                "decision table"
            )
    return problems


def default_targets(repo_root: Path) -> list[Path]:
    docs = sorted((repo_root / "docs").glob("*.md"))
    return [repo_root / "README.md", *docs]


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    paths = (
        [Path(arg).resolve() for arg in argv]
        if argv
        else default_targets(repo_root)
    )
    problems: list[str] = []
    for path in paths:
        problems.extend(check_file(path, repo_root))
    problems.extend(check_rule_catalogue(repo_root))
    problems.extend(check_engine_catalogue(repo_root))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"docs links ok: {len(paths)} files checked")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
