"""Smoke the multi-tenant registry over the real binary wire.

Boots ``opaq serve`` as a child process with a deliberately tight
``--tenancy-budget`` and a spill directory, streams batches for dozens
of ``(tenant, metric)`` keys through the keyed opcodes
(``INGEST_KEYED`` / ``QUANTILES_KEYED``), and checks, per key, that the
served bounds enclose the true quantiles and that the per-key error
contract ``(g - 1) <= epsilon * count`` held even though the budget
forced cold keys to spill to disk.  Rollup queries (``tenant="*"``)
must answer from the aggregation tree with the exact global count.
Then SIGTERMs the server — it must exit 0 — and warm-restarts a second
server on the same spill directory: every key must answer
**byte-identically** from its restored summary without re-ingesting.

Run:  python examples/tenancy_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.service import ServiceClient

TENANTS = 8
METRICS = 6
PER_KEY = 2_000
EPSILON = 0.02
BUDGET = 40_000  # sample slots: far below TENANTS*METRICS resident demand
PHIS = [0.25, 0.5, 0.9]


def start_server(spill_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch `opaq serve` with a tight tenancy budget; return (proc, url)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--proto", "binary",
            "--port", "0",
            "--shards", "2",
            "--run-size", "20000",
            "--sample-size", "500",
            "--tenancy-budget", str(BUDGET),
            "--tenancy-epsilon", str(EPSILON),
            "--tenancy-spill-dir", spill_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("server exited before announcing its port")
        print(f"  [server] {line.rstrip()}")
        if line.startswith("serving on "):
            return proc, line.split()[2]


def stop_server(proc: subprocess.Popen) -> None:
    """SIGTERM the server; it must exit 0."""
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=60)
    for line in output.splitlines():
        print(f"  [server] {line}")
    assert proc.returncode == 0, f"server exited {proc.returncode}"


def check(label: str, ok: bool) -> None:
    print(f"  {label}: {'yes' if ok else 'NO!'}")
    assert ok, label


def keyed_data() -> dict[tuple[str, str], np.ndarray]:
    rng = np.random.default_rng(1997)  # the paper is VLDB'97
    return {
        (f"tenant{t:02d}", f"metric{m}"): rng.lognormal(
            mean=0.1 * t, sigma=1.0 + 0.05 * m, size=PER_KEY
        )
        for t in range(TENANTS)
        for m in range(METRICS)
    }


def fingerprints(client, pairs):
    """Raw served bytes per key — the bit-identity currency."""
    answers = client.quantiles_keyed(pairs, PHIS)
    return {
        (a.tenant, a.metric): (
            a.count, a.guarantee,
            a.lower.tobytes(), a.upper.tobytes(), a.psi.tobytes(),
        )
        for a in answers
    }


def main() -> None:
    batches = keyed_data()
    pairs = sorted(batches)
    total = PER_KEY * len(pairs)

    with tempfile.TemporaryDirectory() as spill_dir:
        print(
            f"first life ({len(pairs)} keys x {PER_KEY:,} elements, "
            f"budget {BUDGET:,} slots):"
        )
        proc, url = start_server(spill_dir)
        try:
            client = ServiceClient(url)
            receipt = client.ingest_keyed(batches)
            check(
                f"keyed ingest accepted {total:,} elements over {len(pairs)} keys",
                receipt == {"elements": total, "keys": len(pairs)},
            )

            tenancy = client.stats()["tenancy"]
            print(
                f"  resident={tenancy['resident_keys']} "
                f"spilled={tenancy['spilled_keys']} "
                f"used={tenancy['used_slots']:,}/{tenancy['budget_slots']:,} slots"
            )
            check("budget forced spills", tenancy["spills"] > 0)
            check(
                "resident slots within budget",
                tenancy["used_slots"] <= tenancy["budget_slots"],
            )

            answers = client.quantiles_keyed(pairs, PHIS)
            worst = 0.0
            for answer, pair in zip(answers, pairs):
                sorted_data = np.sort(batches[pair])
                for i in range(len(PHIS)):
                    true_value = sorted_data[answer.psi[i] - 1]
                    assert answer.lower[i] <= true_value <= answer.upper[i], pair
                worst = max(worst, answer.epsilon_bound)
            check(
                f"all {len(pairs)} keys enclose their true quantiles", True
            )
            check(
                f"worst served per-key epsilon {worst:.4f} <= {EPSILON}",
                worst <= EPSILON,
            )

            [rollup] = client.quantiles_keyed([("*", "*")], PHIS)
            check(
                f"global rollup counts all {total:,} elements",
                rollup.source == "rollup:global" and rollup.count == total,
            )
            first = fingerprints(client, pairs)
            client.close()
        finally:
            stop_server(proc)

        print("second life (warm restart over the same spill dir):")
        proc, url = start_server(spill_dir)
        try:
            client = ServiceClient(url)
            second = fingerprints(client, pairs)
            check(
                "every key answers byte-identically after the restart",
                first == second,
            )
            client.close()
        finally:
            stop_server(proc)
    print("tenancy smoke: all checks passed")


if __name__ == "__main__":
    main()
