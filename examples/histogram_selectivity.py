"""Equi-depth histograms for query optimisation (the paper's motivation).

The paper opens with query optimizers: "quantile algorithms can generate
equi-depth histograms, which have been used to estimate query result
sizes", and notes that equi-depth histograms had "not worked well for
range queries when data distribution skew has been high".

This example builds a 20-bucket equi-depth histogram over a *heavily
skewed* Zipf workload from one OPAQ pass, then answers range-selectivity
queries with deterministic bands and compares them with the truth.

Run:  python examples/histogram_selectivity.py
"""

import numpy as np

from repro import OPAQ, OPAQConfig
from repro.apps import EquiDepthHistogram
from repro.workloads import ZipfGenerator

N = 300_000
BUCKETS = 20


def main() -> None:
    generator = ZipfGenerator(parameter=0.3)  # much harsher than the paper's 0.86
    data = generator.generate(N, seed=7)
    print(
        f"{N:,} Zipf(parameter=0.3) keys — heavy skew: median "
        f"{np.median(data):,.0f} vs max {data.max():,.0f}"
    )

    config = OPAQConfig(run_size=N // 10, sample_size=1000)
    summary = OPAQ(config).summarize(data)
    hist = EquiDepthHistogram(summary, BUCKETS)
    print(
        f"\n{BUCKETS}-bucket equi-depth histogram from one pass; every "
        f"bucket holds {hist.depth:,.0f} +/- {hist.max_depth_error():,} keys "
        f"(deterministic)"
    )
    print(hist.describe())

    # Range predicates of very different selectivities.
    lo_all, hi_all = float(data.min()), float(data.max())
    queries = [
        (lo_all, lo_all + 0.001 * (hi_all - lo_all)),  # the dense low end
        (lo_all, np.median(data)),
        (np.median(data), hi_all),
        (0.9 * hi_all, hi_all),  # the sparse high end
    ]
    print(f"\n{'predicate':>42}  {'estimate':>9}  {'band':>19}  {'true':>8}  ok")
    for lo, hi in queries:
        est = hist.selectivity(lo, hi)
        true = np.count_nonzero((data >= lo) & (data <= hi)) / data.size
        ok = est.lower <= true <= est.upper
        print(
            f"[{lo:>18,.1f}, {hi:>18,.1f}]  {est.estimate:>8.4f}  "
            f"[{est.lower:.4f}, {est.upper:.4f}]  {true:>8.4f}  {'yes' if ok else 'NO!'}"
        )

    print(
        "\nskew does not widen the bands: OPAQ's guarantees are rank-based, "
        "which is exactly why the paper promises 'better results' for "
        "skewed range queries."
    )


if __name__ == "__main__":
    main()
