"""Optimizer statistics over a multi-column table ([PS84] motivation).

The paper's very first use case: "Query optimizers need accurate
estimates of the number of tuples satisfying various predicates."  This
example plays a nightly ANALYZE job: one OPAQ pass per column of a
columnar table, then cardinality estimation for range predicates and
their conjunctions — including a correlated column pair where the
textbook independence assumption goes wrong while the assumption-free
Fréchet band stays honest.

Run:  python examples/optimizer_statistics.py
"""

import tempfile

import numpy as np

from repro.apps import Predicate, TableStatistics
from repro.core import OPAQConfig
from repro.storage import TableDataset

N = 200_000


def main() -> None:
    rng = np.random.default_rng(84)  # [PS84]
    # An orders-like table: amount is lognormal, latency correlates with
    # amount (big orders take longer), discount is independent.
    amount = rng.lognormal(4.0, 1.0, size=N)
    latency = amount * 0.02 + rng.exponential(1.0, size=N)
    discount = rng.uniform(0.0, 0.3, size=N)

    with tempfile.TemporaryDirectory() as tmp:
        table = TableDataset.create(
            f"{tmp}/orders",
            {"amount": amount, "latency": latency, "discount": discount},
        )
        config = OPAQConfig(run_size=N // 10, sample_size=800)
        print(f"ANALYZE: one OPAQ pass per column over {N:,} rows ...")
        stats = TableStatistics.collect(table, config)

        queries = {
            "amount BETWEEN 50 AND 200": [Predicate("amount", 50.0, 200.0)],
            "latency <= 3": [Predicate("latency", 0.0, 3.0)],
            "amount >= 150 AND latency >= 4 (correlated!)": [
                Predicate("amount", 150.0, float(amount.max())),
                Predicate("latency", 4.0, float(latency.max())),
            ],
            "amount >= 150 AND discount <= 0.1 (independent)": [
                Predicate("amount", 150.0, float(amount.max())),
                Predicate("discount", 0.0, 0.1),
            ],
        }
        cols = {"amount": amount, "latency": latency, "discount": discount}
        print(f"\n{'predicate':>48}  {'est rows':>9}  {'guar. band':>21}  {'true':>8}")
        for label, preds in queries.items():
            est = stats.conjunction(preds)
            mask = np.ones(N, dtype=bool)
            for p in preds:
                mask &= (cols[p.column] >= p.lo) & (cols[p.column] <= p.hi)
            true = int(mask.sum())
            band = f"[{est.lower * N:>8,.0f}, {est.upper * N:>9,.0f}]"
            print(
                f"{label:>48}  {est.independence * N:>9,.0f}  {band:>21}  {true:>8,}"
            )
            assert est.lower * N - 1 <= true <= est.upper * N + 1

        print(
            "\nnote the correlated conjunction: the independence estimate "
            "misses badly, the Fréchet band (from OPAQ's deterministic "
            "per-column bounds, no assumptions) still contains the truth."
        )


if __name__ == "__main__":
    main()
