"""Equi-depth discretisation for quantitative rule mining ([AS96]).

The paper's data-mining motivation: mining quantitative association rules
requires discretising numeric attributes into equi-depth intervals, whose
near-equal support bounds the *partial completeness* of the rules found.

This example discretises two skewed numeric attributes ("age"-like and
"income"-like) from one OPAQ pass each, shows the interval labels and
populations, and computes the [AS96] partial-completeness level the
deterministic bounds buy.

Run:  python examples/discretize_for_mining.py
"""

import numpy as np

from repro import OPAQ, OPAQConfig
from repro.apps import EquiDepthDiscretizer

N = 250_000
INTERVALS = 8


def main() -> None:
    rng = np.random.default_rng(1996)  # [AS96] was SIGMOD'96
    attributes = {
        "age": np.clip(rng.normal(38, 14, size=N), 16, 95),
        "income": rng.lognormal(10.5, 0.8, size=N),  # heavy right tail
    }
    config = OPAQConfig(run_size=N // 10, sample_size=800)

    for name, values in attributes.items():
        summary = OPAQ(config).summarize(values)
        disc = EquiDepthDiscretizer(summary, INTERVALS)
        ids = disc.transform(values)
        counts = np.bincount(ids, minlength=INTERVALS)

        print(f"attribute {name!r}: {INTERVALS} equi-depth intervals "
              f"(ideal population {N // INTERVALS:,})")
        for i, label in enumerate(disc.labels()):
            bar = "#" * int(round(counts[i] / (N / INTERVALS) * 20))
            print(f"  {i}: {label:>24}  {counts[i]:>7,}  {bar}")
        print(
            f"  max deviation guaranteed <= {disc.max_population_excess():,} "
            f"(measured {int(np.abs(counts - N / INTERVALS).max()):,})"
        )
        print(
            f"  partial completeness K = {disc.partial_completeness():.4f} "
            f"(1.0 = information-lossless for rule mining)\n"
        )

    print(
        "skew does not unbalance the intervals: equal support is what the "
        "rule miner's support thresholds rely on."
    )


if __name__ == "__main__":
    main()
