"""Parallel OPAQ on the simulated IBM SP-2 (paper section 3).

Runs the parallel formulation over 1..16 simulated processors: each
processor samples its own partition, the sorted sample lists are merged
globally (sample merge), and the quantile phase runs on the result.  The
*data path is real* — the bounds printed are genuinely correct for the
generated keys — while the clock follows the paper's two-level cost model,
reproducing the phase breakdown (Table 12) and the speed-up curve
(Figure 6).

Run:  python examples/parallel_simulation.py
"""

import numpy as np

from repro.core import OPAQConfig
from repro.metrics import dectile_fractions, score_bounds
from repro.parallel import ParallelOPAQ, speedup_series
from repro.workloads import UniformGenerator

TOTAL = 400_000
SAMPLES_PER_RUN = 1024


def main() -> None:
    data = UniformGenerator().generate(TOTAL, seed=97)
    truth = np.sort(data)
    phis = dectile_fractions()
    times = {}

    for p in (1, 2, 4, 8, 16):
        per_proc = TOTAL // p
        config = OPAQConfig(
            run_size=max(SAMPLES_PER_RUN, per_proc // 3),
            sample_size=SAMPLES_PER_RUN,
        )
        result = ParallelOPAQ(p, config, merge_method="sample").run(
            data, phis=phis
        )
        times[p] = result.total_time
        fractions = result.phase_fractions()
        bounds = result.bounds(phis)
        report = score_bounds(
            truth,
            phis,
            np.array([b.lower for b in bounds]),
            np.array([b.upper for b in bounds]),
            sample_size=SAMPLES_PER_RUN,
        )
        print(
            f"p={p:>2}: simulated {result.total_time:6.3f}s | "
            f"io {fractions.get('io', 0):.2f} "
            f"sampling {fractions.get('sampling', 0):.2f} "
            f"merge {fractions.get('global_merge', 0):.3f} | "
            f"RERA max {report.rera_max:.3f}% RERN {report.rern:.3f}% "
            f"(bounds hold: {report.within_bounds()})"
        )

    print("\nspeed-up (paper Figure 6 shape — near-linear):")
    for p, s in speedup_series(times).as_rows():
        bar = "#" * int(round(s * 3))
        print(f"  p={int(p):>2}: {s:5.2f}  {bar}")


if __name__ == "__main__":
    main()
