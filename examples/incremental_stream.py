"""Incremental OPAQ over nightly batches + exact refinement (section 4).

"If the sorted samples are kept from the runs of the old data, one need
only compute the sorted samples from the new runs and merge."

A week of nightly ingests with a drifting distribution: the incremental
summary keeps answering quantile queries over *everything seen so far*
without re-reading history, and at the end a single extra pass turns the
week's median bounds into the exact value.

Run:  python examples/incremental_stream.py
"""

import numpy as np

from repro import IncrementalOPAQ, OPAQConfig
from repro.core import refine_exact

BATCH = 50_000
DAYS = 7


def main() -> None:
    rng = np.random.default_rng(2026)
    config = OPAQConfig(run_size=10_000, sample_size=500)
    inc = IncrementalOPAQ(config)
    history = []

    print(f"{'day':>3}  {'total n':>9}  {'median bounds':>28}  {'true':>9}  ok")
    for day in range(1, DAYS + 1):
        # The workload drifts: each day is shifted and re-scaled.
        batch = rng.lognormal(mean=0.1 * day, sigma=0.4, size=BATCH)
        history.append(batch)
        inc.update(batch)

        median = inc.bound(inc.summary, 0.5)
        truth = np.sort(np.concatenate(history))[median.rank - 1]
        ok = median.lower <= truth <= median.upper
        print(
            f"{day:>3}  {inc.count:>9,}  "
            f"[{median.lower:>11.4f}, {median.upper:>11.4f}]  "
            f"{truth:>9.4f}  {'yes' if ok else 'NO!'}"
        )

    print(
        f"\nafter {DAYS} days: {inc.summary.num_samples:,} retained samples "
        f"summarise {inc.count:,} keys; guarantee "
        f"{inc.guaranteed_rank_error():,} ranks per bound"
    )

    # One extra pass (over data we still have around) -> exact median.
    bounds = inc.bounds(inc.summary, [0.5])
    [exact] = refine_exact(iter(history), bounds)
    truth = np.sort(np.concatenate(history))[bounds[0].rank - 1]
    print(f"exact median via one refinement pass: {exact:.6f} (truth {truth:.6f})")
    assert exact == truth


if __name__ == "__main__":
    main()
