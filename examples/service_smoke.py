"""Smoke the sharded quantile service over its real wire protocols.

Boots ``opaq serve`` as a child process on a free port speaking the
default **binary protocol v3**, streams 100k elements at it in numpy
batches through the asyncio server, snapshots, and checks the served
quantile vector against ground truth computed in this process: each true
quantile must lie inside the returned ``[e_l, e_u]`` with at most
``2 x guarantee`` elements between the bounds (the paper's Lemma 3,
recomputed for the merged shard layout).  Then SIGTERMs the server —
which must exit 0 after flushing a final snapshot — boots a second
server on the same snapshot directory speaking the **HTTP compatibility
protocol**, and verifies the warm restart serves byte-identical bounds
through the other wire without re-ingesting anything.

Run:  python examples/service_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.service import ServiceClient

N = 100_000
BATCH = 5_000
PHIS = [0.25, 0.5, 0.75]


def start_server(snapshot_dir: str, proto: str) -> tuple[subprocess.Popen, str]:
    """Launch `opaq serve` on a free port; return (process, base URL)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--proto",
            proto,
            "--port",
            "0",
            "--shards",
            "2",
            "--run-size",
            "20000",
            "--sample-size",
            "500",
            "--snapshot-dir",
            snapshot_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("server exited before announcing its port")
        print(f"  [server] {line.rstrip()}")
        if line.startswith("serving on "):
            return proc, line.split()[2]


def stop_server(proc: subprocess.Popen) -> str:
    """SIGTERM the server and return its remaining output (must exit 0)."""
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=60)
    for line in output.splitlines():
        print(f"  [server] {line}")
    assert proc.returncode == 0, f"server exited {proc.returncode}"
    return output


def check(label: str, ok: bool) -> None:
    print(f"  {label}: {'yes' if ok else 'NO!'}")
    assert ok, label


def main() -> None:
    rng = np.random.default_rng(2026)
    data = rng.lognormal(mean=0.0, sigma=1.5, size=N)
    sorted_data = np.sort(data)

    with tempfile.TemporaryDirectory() as snapshot_dir:
        print(f"first life (ingest {N:,} elements over binary protocol v3):")
        proc, url = start_server(snapshot_dir, proto="binary")
        try:
            check("server speaks opaq:// by default", url.startswith("opaq://"))
            client = ServiceClient(url)
            for start in range(0, N, BATCH):
                # Batched array ingest: numpy in, framed bytes on the wire.
                client.ingest(data[start : start + BATCH])
            epoch = client.snapshot()
            check(f"epoch 1 covers all {N:,} elements", epoch["count"] == N)

            # One round-trip answers the whole fraction vector.
            vec = client.quantiles(PHIS)
            print(
                f"  served epoch {vec.epoch}: n={vec.count:,}, "
                f"guarantee n/s ~= {vec.guarantee}"
            )
            for i, phi in enumerate(PHIS):
                lower, upper = vec.lower[i], vec.upper[i]
                true_value = sorted_data[vec.ranks[i] - 1]
                enclosed = lower <= true_value <= upper
                between = int(
                    np.searchsorted(sorted_data, upper, side="left")
                    - np.searchsorted(sorted_data, lower, side="right")
                )
                print(
                    f"  phi={phi:.2f}: [{lower:.5f}, {upper:.5f}] "
                    f"true={true_value:.5f}, {between} elements between "
                    f"(budget {2 * vec.guarantee})"
                )
                check(
                    f"phi={phi:.2f} enclosed within deterministic window",
                    enclosed and between <= 2 * vec.guarantee,
                )
            first_vec = vec
        finally:
            output = stop_server(proc)
        check("SIGTERM shut the server down cleanly", "cleanly" in output)

        print("second life (warm restart, served over the HTTP shim):")
        proc, url = start_server(snapshot_dir, proto="http")
        try:
            check("compat server speaks http://", url.startswith("http://"))
            restarted = ServiceClient(url).quantiles(PHIS)
            check(
                "warm restart serves the identical epoch",
                restarted.epoch == first_vec.epoch
                and restarted.count == first_vec.count,
            )
            # Byte-identical across the restart AND across the protocols:
            # both wires frame the same vectorised kernel's answer.
            check(
                "warm restart serves bit-identical bounds over HTTP",
                restarted.lower.tobytes() == first_vec.lower.tobytes()
                and restarted.upper.tobytes() == first_vec.upper.tobytes()
                and restarted.guarantee == first_vec.guarantee,
            )
        finally:
            stop_server(proc)

    print("service smoke passed.")


if __name__ == "__main__":
    main()
