"""Smoke the sharded quantile service over its real wire protocol.

Boots `opaq serve` as a child process on a free port, streams 100k
elements at it over HTTP, snapshots, and checks the served median
against ground truth computed in this process: the true median must lie
inside the returned ``[e_l, e_u]`` with at most ``2 x guarantee``
elements between the bounds (the paper's Lemma 3, recomputed for the
merged shard layout).  Then SIGTERMs the server — which must exit 0
after flushing a final snapshot — boots a second server on the same
snapshot directory, and verifies the warm restart serves the identical
answer without re-ingesting anything.

Run:  python examples/service_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.service import ServiceClient

N = 100_000
BATCH = 5_000
PHIS = [0.25, 0.5, 0.75]


def start_server(snapshot_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch `opaq serve` on a free port; return (process, base URL)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--shards",
            "2",
            "--run-size",
            "20000",
            "--sample-size",
            "500",
            "--snapshot-dir",
            snapshot_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("server exited before announcing its port")
        print(f"  [server] {line.rstrip()}")
        if line.startswith("serving on "):
            return proc, line.split()[2]


def stop_server(proc: subprocess.Popen) -> str:
    """SIGTERM the server and return its remaining output (must exit 0)."""
    proc.send_signal(signal.SIGTERM)
    output, _ = proc.communicate(timeout=60)
    for line in output.splitlines():
        print(f"  [server] {line}")
    assert proc.returncode == 0, f"server exited {proc.returncode}"
    return output


def check(label: str, ok: bool) -> None:
    print(f"  {label}: {'yes' if ok else 'NO!'}")
    assert ok, label


def main() -> None:
    rng = np.random.default_rng(2026)
    data = rng.lognormal(mean=0.0, sigma=1.5, size=N)
    sorted_data = np.sort(data)

    with tempfile.TemporaryDirectory() as snapshot_dir:
        print(f"first life (ingest {N:,} elements over HTTP):")
        proc, url = start_server(snapshot_dir)
        try:
            client = ServiceClient(url)
            for start in range(0, N, BATCH):
                client.ingest(data[start : start + BATCH].tolist())
            epoch = client.snapshot()
            check(f"epoch 1 covers all {N:,} elements", epoch["count"] == N)

            answer = client.quantile(PHIS)
            guarantee = answer["guarantee"]
            print(
                f"  served epoch {answer['epoch']}: n={answer['count']:,}, "
                f"guarantee n/s ~= {guarantee}"
            )
            for r in answer["results"]:
                true_value = sorted_data[r["rank"] - 1]
                enclosed = r["lower"] <= true_value <= r["upper"]
                between = int(
                    np.searchsorted(sorted_data, r["upper"], side="left")
                    - np.searchsorted(sorted_data, r["lower"], side="right")
                )
                print(
                    f"  phi={r['phi']:.2f}: [{r['lower']:.5f}, {r['upper']:.5f}] "
                    f"true={true_value:.5f}, {between} elements between "
                    f"(budget {2 * guarantee})"
                )
                check(
                    f"phi={r['phi']:.2f} enclosed within deterministic window",
                    enclosed and between <= 2 * guarantee,
                )
            first_answer = answer
        finally:
            output = stop_server(proc)
        check("SIGTERM shut the server down cleanly", "cleanly" in output)

        print("second life (warm restart from the snapshot directory):")
        proc, url = start_server(snapshot_dir)
        try:
            restarted = ServiceClient(url).quantile(PHIS)
            check(
                "warm restart serves the identical epoch",
                restarted["epoch"] == first_answer["epoch"]
                and restarted["count"] == first_answer["count"],
            )
            check(
                "warm restart serves identical bounds",
                restarted["results"] == first_answer["results"],
            )
        finally:
            stop_server(proc)

    print("service smoke passed.")


if __name__ == "__main__":
    main()
