"""Quickstart: one pass over a disk-resident file, dectiles with bounds.

Generates the paper's 1M-key uniform workload (scaled down by default; set
``N`` below or ``REPRO_FULL=1`` for more), writes it to disk, runs OPAQ's
single pass through the run reader, and prints each dectile's bound pair
next to the exact value — including the deterministic guarantee that the
bounds came with *before* the truth was known.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import OPAQ, OPAQConfig, RunReader
from repro.metrics import dectile_fractions
from repro.workloads import UniformGenerator, write_dataset

N = 1_000_000 if os.environ.get("REPRO_FULL") else 200_000
RUN_SIZE = N // 10  # m: ten runs, as a disk-resident read would use
SAMPLE_SIZE = 1000  # s: the paper's headline setting


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "keys.opaq")
        print(f"writing {N:,} uniform keys (with n/10 duplicates) to {path}")
        dataset = write_dataset(path, UniformGenerator(), N, seed=1997)

        config = OPAQConfig(run_size=RUN_SIZE, sample_size=SAMPLE_SIZE)
        reader = RunReader(dataset, run_size=RUN_SIZE)

        print(
            f"one pass: r={reader.num_runs} runs of m={RUN_SIZE:,}, "
            f"s={SAMPLE_SIZE} samples/run "
            f"-> {reader.num_runs * SAMPLE_SIZE:,} retained keys"
        )
        estimator = OPAQ(config)
        summary = estimator.summarize(reader)
        print(
            f"I/O: {reader.stats.elements_read:,} keys in "
            f"{reader.stats.read_ops} reads, passes={reader.stats.passes_started}"
        )
        print(
            f"guarantee: each bound within {summary.guaranteed_rank_error():,} "
            f"ranks of the truth (n/s = {N // SAMPLE_SIZE:,})\n"
        )

        # Ground truth — only for the printout; OPAQ never sees this sort.
        truth = np.sort(dataset.read_all())

        print(f"{'phi':>5}  {'lower':>14}  {'true':>14}  {'upper':>14}  enclosed")
        for bound in estimator.bounds(summary, dectile_fractions()):
            true_value = truth[bound.rank - 1]
            ok = bound.lower <= true_value <= bound.upper
            print(
                f"{bound.phi:>5.2f}  {bound.lower:>14.2f}  {true_value:>14.2f}"
                f"  {bound.upper:>14.2f}  {'yes' if ok else 'NO!'}"
            )

        median = estimator.bound(summary, 0.5)
        print(
            f"\nmedian in [{median.lower:.2f}, {median.upper:.2f}] — at most "
            f"{median.max_between:,} of {N:,} elements lie between the bounds"
        )


if __name__ == "__main__":
    main()
