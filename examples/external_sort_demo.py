"""External sorting with OPAQ splitters ([DNS91] motivation).

"Data can be partitioned using quantiles into a number of partitions such
that each partition fits into main memory."  This example sorts a file
~6x larger than the memory budget in exactly two reads of the input: one
OPAQ pass to learn splitters, one scatter pass, then per-bucket in-memory
sorts — no merge pass.

Run:  python examples/external_sort_demo.py
"""

import os
import tempfile
import time

import numpy as np

from repro.apps import external_sort
from repro.storage import DiskDataset
from repro.workloads import ZipfGenerator, write_dataset

N = 600_000
MEMORY = 100_000  # keys the sorter may hold at once


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        src_path = os.path.join(tmp, "unsorted.opaq")
        out_path = os.path.join(tmp, "sorted.opaq")
        print(f"writing {N:,} skewed keys; memory budget {MEMORY:,} keys")
        dataset = write_dataset(src_path, ZipfGenerator(parameter=0.86), N, seed=3)

        t0 = time.perf_counter()
        report = external_sort(dataset, out_path, memory=MEMORY)
        elapsed = time.perf_counter() - t0

        print(f"\nsorted in {elapsed:.2f}s with {report.passes_over_input} reads of the input")
        print(
            f"buckets: {report.num_buckets}, sizes {list(report.bucket_sizes)}"
        )
        print(
            f"largest bucket {report.max_bucket:,} <= guaranteed "
            f"{report.guaranteed_max_bucket:,} <= memory {MEMORY:,}"
        )
        print(f"imbalance: {report.imbalance:.3f}x the ideal n/q")

        out = DiskDataset.open(out_path).read_all()
        ok_sorted = bool(np.all(np.diff(out) >= 0))
        ok_multiset = bool(
            np.array_equal(np.sort(dataset.read_all()), out)
        )
        print(f"\noutput sorted: {ok_sorted}; same multiset as input: {ok_multiset}")


if __name__ == "__main__":
    main()
