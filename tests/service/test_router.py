"""Shard routing: determinism, coverage, key_fn validation."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.service import ShardRouter, hash_shard_indices


class TestHashRouting:
    def test_deterministic_across_calls(self, rng):
        values = rng.uniform(size=10_000)
        first = hash_shard_indices(values, 8)
        second = hash_shard_indices(values.copy(), 8)
        np.testing.assert_array_equal(first, second)

    def test_indices_in_range_and_all_shards_hit(self, rng):
        values = rng.uniform(size=10_000)
        indices = hash_shard_indices(values, 8)
        assert indices.min() >= 0 and indices.max() < 8
        assert set(np.unique(indices)) == set(range(8))

    def test_load_is_roughly_uniform(self, rng):
        values = rng.normal(size=40_000)
        counts = np.bincount(hash_shard_indices(values, 4), minlength=4)
        assert counts.min() > 0.8 * values.size / 4
        assert counts.max() < 1.2 * values.size / 4

    def test_equal_values_land_on_one_shard(self):
        values = np.full(1_000, 3.25)
        indices = hash_shard_indices(values, 8)
        assert np.unique(indices).size == 1

    def test_adjacent_floats_decorrelate(self):
        # A range of consecutive representable floats must not all map to
        # the same shard (the raw bit patterns differ by 1).
        base = np.float64(1.0)
        values = np.array([np.nextafter(base, 2.0, dtype=np.float64)])
        for _ in range(63):
            values = np.append(
                values, np.nextafter(values[-1], 2.0, dtype=np.float64)
            )
        assert np.unique(hash_shard_indices(values, 8)).size > 1

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError):
            hash_shard_indices(np.array([1.0]), 0)


class TestSplit:
    def test_split_partitions_exactly(self, rng):
        router = ShardRouter(4)
        values = rng.uniform(size=5_000)
        parts = router.split(values)
        assert len(parts) == 4
        assert sum(p.size for p in parts) == values.size
        np.testing.assert_array_equal(
            np.sort(np.concatenate(parts)), np.sort(values)
        )

    def test_single_shard_fast_path(self, rng):
        values = rng.uniform(size=100)
        (part,) = ShardRouter(1).split(values)
        np.testing.assert_array_equal(part, values)

    def test_nan_rejected(self):
        with pytest.raises(DataError, match="NaN"):
            ShardRouter(2).split([1.0, float("nan"), 2.0])

    def test_non_numeric_rejected(self):
        with pytest.raises(DataError, match="not numeric"):
            ShardRouter(2).split(["a", "b"])

    def test_two_dimensional_rejected(self):
        with pytest.raises(DataError, match="one-dimensional"):
            ShardRouter(2).split(np.zeros((3, 3)))


class TestChunkPolicy:
    """The zero-cost ingest partitioning policy: contiguous views."""

    def test_partitions_exactly_and_preserves_order(self, rng):
        values = rng.uniform(size=5_003)  # deliberately not divisible
        parts = ShardRouter(4, policy="chunk").split(values)
        assert len(parts) == 4
        np.testing.assert_array_equal(np.concatenate(parts), values)

    def test_near_even_sizes(self, rng):
        parts = ShardRouter(8, policy="chunk").split(rng.uniform(size=10_001))
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_parts_are_views_not_copies(self, rng):
        values = rng.uniform(size=1_000)
        parts = ShardRouter(4, policy="chunk").split(values)
        assert all(p.base is not None for p in parts if p.size)

    def test_deterministic(self, rng):
        values = rng.uniform(size=2_000)
        a = ShardRouter(3, policy="chunk").split(values)
        b = ShardRouter(3, policy="chunk").split(values.copy())
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="policy"):
            ShardRouter(2, policy="round-robin")

    def test_key_fn_with_chunk_policy_rejected(self):
        with pytest.raises(ConfigError, match="key_fn"):
            ShardRouter(2, policy="chunk", key_fn=lambda v: v.astype(np.int64))

    def test_same_validation_as_hash(self):
        with pytest.raises(DataError, match="NaN"):
            ShardRouter(2, policy="chunk").split([1.0, float("nan")])


class TestKeyFn:
    def test_custom_key_fn_controls_placement(self):
        router = ShardRouter(2, key_fn=lambda v: (v >= 0).astype(np.int64))
        negatives, positives = router.split([-1.0, 2.0, -3.0, 4.0])
        assert set(negatives) == {-1.0, -3.0}
        assert set(positives) == {2.0, 4.0}

    def test_key_fn_shape_mismatch_rejected(self):
        router = ShardRouter(2, key_fn=lambda v: np.zeros(1, dtype=np.int64))
        with pytest.raises(ConfigError, match="one shard index per key"):
            router.split([1.0, 2.0, 3.0])

    def test_key_fn_out_of_range_rejected(self):
        router = ShardRouter(2, key_fn=lambda v: np.full(v.shape, 7))
        with pytest.raises(ConfigError, match="outside"):
            router.split([1.0, 2.0])
