"""Wire protocol v3: framing, codecs, and hostile-bytes robustness.

Every decoder in :mod:`repro.service.proto` must hold the contract that
malformed input raises a *typed* repro error (DataError for corrupt or
hostile bytes), never an IndexError/struct.error leak, never a silent
truncation, and — at the server — never a hang.  The fuzz cases here are
seeded and deterministic so a failure is a repro, not a flake.
"""

import struct

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DataError,
    EstimationError,
    ReproError,
    ServiceError,
)
from repro.service import proto


def frame_of(opcode=proto.Op.PING, payload=b"", version=proto.WIRE_VERSION,
             magic=proto.MAGIC, flags=0, length=None):
    """Hand-rolled frame with any field corrupted on demand."""
    return proto.HEADER.pack(
        magic, version, opcode, flags,
        len(payload) if length is None else length,
    ) + payload


class TestFraming:
    def test_roundtrip(self):
        frame = proto.encode_frame(proto.Op.INGEST, b"abc")
        opcode, length = proto.parse_header(frame[: proto.HEADER.size])
        assert opcode == proto.Op.INGEST
        assert length == 3
        assert frame[proto.HEADER.size :] == b"abc"

    def test_empty_payload(self):
        frame = proto.encode_frame(proto.Op.PING)
        assert len(frame) == proto.HEADER.size
        assert proto.parse_header(frame) == (proto.Op.PING, 0)

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(DataError, match="frame limit"):
            proto.encode_frame(proto.Op.INGEST, b"x" * (proto.MAX_PAYLOAD + 1))

    def test_truncated_header(self):
        with pytest.raises(DataError, match="truncated frame header"):
            proto.parse_header(b"OPAQ\x02")

    def test_wrong_magic(self):
        with pytest.raises(DataError, match="not an OPAQ frame"):
            proto.parse_header(frame_of(magic=b"HTTP"))

    def test_version_skew_names_both_versions(self):
        with pytest.raises(DataError, match=r"v1.*v2|version skew"):
            proto.parse_header(frame_of(version=1))
        with pytest.raises(DataError, match="version skew"):
            proto.parse_header(frame_of(version=99))

    def test_reserved_flags_rejected(self):
        with pytest.raises(DataError, match="reserved"):
            proto.parse_header(frame_of(flags=0x0001))

    def test_oversized_declared_length_rejected(self):
        with pytest.raises(DataError, match="exceeds"):
            proto.parse_header(frame_of(length=proto.MAX_PAYLOAD + 1))

    def test_custom_max_payload(self):
        header = frame_of(length=2048)
        assert proto.parse_header(header) == (proto.Op.PING, 2048)
        with pytest.raises(DataError, match="exceeds"):
            proto.parse_header(header, max_payload=1024)


class TestArrayBlocks:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(10, dtype=np.float64),
            np.array([], dtype=np.float64),
            np.arange(6, dtype=np.int64).reshape(2, 3),
            np.array([1.5, -0.0, np.inf], dtype=np.float32),
            np.array([True, False]),
        ],
    )
    def test_roundtrip(self, arr):
        back = proto.unpack_single_array(proto.pack_array(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert back.tobytes() == np.ascontiguousarray(arr).tobytes()

    def test_returned_array_is_writable(self):
        back = proto.unpack_single_array(proto.pack_array(np.arange(4.0)))
        back.sort()  # frombuffer views are read-only; the codec must copy

    def test_object_dtype_refused(self):
        with pytest.raises(DataError, match="object"):
            proto.pack_array(np.array(["a", object()], dtype=object))

    def test_excess_ndim_refused(self):
        with pytest.raises(DataError, match="dimensions"):
            proto.pack_array(np.zeros((2, 2, 2)))

    def test_truncated_data_detected(self):
        blob = proto.pack_array(np.arange(100, dtype=np.float64))
        with pytest.raises(DataError, match="truncated"):
            proto.unpack_single_array(blob[:-1])

    def test_trailing_bytes_detected(self):
        blob = proto.pack_array(np.arange(4, dtype=np.float64))
        with pytest.raises(DataError, match="trailing"):
            proto.unpack_single_array(blob + b"\x00")

    def test_unknown_dtype_string_refused(self):
        bad = struct.pack("!B", 3) + b"zz9" + struct.pack("!B", 1) + struct.pack("!Q", 0)
        with pytest.raises(DataError, match="dtype"):
            proto.unpack_single_array(bad)

    def test_huge_declared_shape_cannot_overread(self):
        # Declares 2**40 elements but supplies none: must be a typed
        # error, not an allocation attempt or a garbage array.
        bad = (
            struct.pack("!B", 3) + b"<f8"
            + struct.pack("!B", 1) + struct.pack("!Q", 1 << 40)
        )
        with pytest.raises(DataError, match="truncated"):
            proto.unpack_single_array(bad)

    def test_fuzz_random_corruption_never_leaks_foreign_errors(self):
        """Seeded fuzz: bit flips, truncations and splices of valid
        blocks must always surface as repro errors (or decode, for
        corruptions that happen to keep the block well-formed)."""
        rng = np.random.default_rng(0xC0FFEE)
        base = proto.pack_array(rng.normal(size=64))
        for _ in range(400):
            blob = bytearray(base)
            mode = rng.integers(0, 3)
            if mode == 0:  # truncate
                blob = blob[: rng.integers(0, len(blob))]
            elif mode == 1:  # flip bytes
                for _ in range(int(rng.integers(1, 8))):
                    blob[int(rng.integers(0, len(blob)))] = int(
                        rng.integers(0, 256)
                    )
            else:  # splice two blocks
                cut = int(rng.integers(0, len(blob)))
                blob = blob[:cut] + base[: int(rng.integers(0, len(base)))]
            try:
                proto.unpack_single_array(bytes(blob))
            except ReproError:
                pass  # typed: the contract holds


class TestOpcodeCodecs:
    def test_ingest_roundtrip(self):
        values = np.linspace(-5, 5, 1000)
        decoded = proto.decode_ingest_request(
            proto.encode_ingest_request(values)
        )
        assert decoded.tobytes() == values.tobytes()
        reply = proto.decode_ingest_reply(proto.encode_ingest_reply(1000, 7))
        assert reply == {"accepted": 1000, "epoch": 7}

    def test_ingest_rejects_non_numeric_payload(self):
        blob = proto.pack_array(np.array([b"ab", b"cd"]))
        with pytest.raises(DataError, match="numeric"):
            proto.decode_ingest_request(blob)

    def test_quantiles_roundtrip(self):
        vec = proto.QuantileVector(
            epoch=3,
            count=10_000,
            guarantee=99,
            staleness=5,
            phis=np.array([0.25, 0.5, 0.75]),
            ranks=np.array([2500, 5000, 7500], dtype=np.int64),
            lower=np.array([-0.7, -0.0, 0.7]),
            upper=np.array([-0.6, 0.1, 0.8]),
            max_below=np.array([9, 9, 9], dtype=np.int64),
            max_above=np.array([8, 8, 8], dtype=np.int64),
        )
        back = proto.decode_quantiles_reply(proto.encode_quantiles_reply(vec))
        assert back.epoch == 3 and back.count == 10_000
        assert back.guarantee == 99 and back.staleness == 5
        for field in ("phis", "ranks", "lower", "upper", "max_below", "max_above"):
            assert getattr(back, field).tobytes() == getattr(vec, field).tobytes()
        row = back.to_dict()["results"][1]
        assert row["max_between"] == 17

    def test_quantiles_reply_truncation_detected(self):
        vec = proto.QuantileVector(
            epoch=1, count=10, guarantee=1, staleness=0,
            phis=np.array([0.5]), ranks=np.array([5], dtype=np.int64),
            lower=np.array([0.0]), upper=np.array([1.0]),
            max_below=np.array([0], dtype=np.int64),
            max_above=np.array([0], dtype=np.int64),
        )
        blob = proto.encode_quantiles_reply(vec)
        with pytest.raises(DataError):
            proto.decode_quantiles_reply(blob[:-3])
        with pytest.raises(DataError, match="trailing"):
            proto.decode_quantiles_reply(blob + b"!")

    def test_snapshot_and_stats_roundtrip(self):
        snap = proto.decode_snapshot_reply(
            proto.encode_snapshot_reply(2, 500, 41, 100)
        )
        assert snap == {"epoch": 2, "count": 500, "guarantee": 41, "samples": 100}
        stats = proto.decode_stats_reply(
            proto.encode_stats_reply({"shards": 4, "accepted": 9})
        )
        assert stats["shards"] == 4
        with pytest.raises(DataError, match="malformed"):
            proto.decode_stats_reply(b"{nope")
        with pytest.raises(DataError, match="object"):
            proto.decode_stats_reply(b"[1,2]")


class TestErrorCodec:
    @pytest.mark.parametrize(
        "exc,kind,retryable",
        [
            (DataError("bad bytes"), "data", False),
            (ConfigError("bad knob"), "config", False),
            (EstimationError("no epoch"), "estimation", False),
            (ServiceError("queue full"), "service", True),
            (ReproError("generic"), "repro", False),
        ],
    )
    def test_taxonomy_roundtrips(self, exc, kind, retryable):
        import json

        body = json.loads(proto.encode_error(exc))
        assert body["kind"] == kind
        assert body["retryable"] is retryable
        with pytest.raises(type(exc), match=str(exc)):
            proto.raise_remote_error(proto.encode_error(exc))

    def test_unknown_kind_degrades_to_service_error(self):
        with pytest.raises(ServiceError, match="mystery"):
            proto.raise_remote_error(b'{"kind": "alien", "error": "mystery"}')

    def test_unreadable_error_frame_is_typed(self):
        with pytest.raises(ServiceError, match="unreadable"):
            proto.raise_remote_error(b"\xff\xfe not json")


class TestKeyedCodecs:
    """The multi-tenant opcodes: key blocks, frames, answer marshalling."""

    KEYS = ["acme\x1flatency", "acme\x1férrors", "globex\x1flatency"]

    def test_ingest_keyed_roundtrip(self):
        counts = np.array([3, 2, 4], dtype=np.int64)
        values = np.arange(9, dtype=np.float64)
        payload = proto.encode_ingest_keyed_request(self.KEYS, counts, values)
        keys, got_counts, got_values = proto.decode_ingest_keyed_request(payload)
        assert keys == self.KEYS
        assert got_counts.tobytes() == counts.tobytes()
        assert got_values.tobytes() == values.tobytes()

    def test_ingest_keyed_reply_roundtrip(self):
        payload = proto.encode_ingest_keyed_reply(9_000, 17)
        assert proto.decode_ingest_keyed_reply(payload) == {
            "elements": 9_000,
            "keys": 17,
        }

    def test_quantiles_keyed_roundtrip(self):
        phis = np.array([0.25, 0.5, 0.99])
        payload = proto.encode_quantiles_keyed_request(self.KEYS, phis)
        keys, got_phis = proto.decode_quantiles_keyed_request(payload)
        assert keys == self.KEYS
        assert got_phis.tobytes() == np.asarray(phis).tobytes()

    def test_key_block_rejects_corrupt_blob_length(self):
        payload = bytearray(
            proto.encode_ingest_keyed_request(
                self.KEYS, [1, 1, 1], np.zeros(3)
            )
        )
        payload[0:8] = struct.pack("!Q", 1 << 40)  # blob "longer" than frame
        with pytest.raises(DataError):
            proto.decode_ingest_keyed_request(bytes(payload))

    def test_key_block_rejects_invalid_utf8(self):
        payload = bytearray(
            proto.encode_ingest_keyed_request(["ab\x1fcd"], [1], np.zeros(1))
        )
        payload[8] = 0xFF  # clobber first key byte: invalid UTF-8 start
        with pytest.raises(DataError, match="UTF-8"):
            proto.decode_ingest_keyed_request(bytes(payload))

    def test_answers_roundtrip_bit_identical(self):
        from repro.service.tenancy.registry import KeyAnswer

        phis = np.array([0.1, 0.5, 0.9])
        answers = [
            KeyAnswer(
                tenant="acme", metric=f"m{i}", count=1000 + i,
                guarantee=7, compactions=i - 1,
                epsilon_bound=0.006 + i * 1e-9, source=source,
                phis=phis, psi=np.array([100, 500, 900], dtype=np.int64),
                lower=np.array([0.1, 0.2, 0.3]) * (i + 1),
                upper=np.array([0.4, 0.5, 0.6]) * (i + 1),
                max_below=np.array([3, 3, 3], dtype=np.int64),
                max_above=np.array([4, 4, 4], dtype=np.int64),
            )
            for i, source in enumerate(
                ["resident", "restored", "rollup:metric", "rollup:global"]
            )
        ]
        decoded = proto.decode_quantiles_keyed_reply(
            proto.encode_quantiles_keyed_reply(answers)
        )
        assert len(decoded) == len(answers)
        for got, want in zip(decoded, answers):
            assert got.to_dict() == want.to_dict()
            assert got.lower.tobytes() == want.lower.tobytes()
            assert got.upper.tobytes() == want.upper.tobytes()

    def test_empty_answers_reply(self):
        payload = proto.encode_quantiles_keyed_reply([])
        assert proto.decode_quantiles_keyed_reply(payload) == []

    def _engine_answer(self, engine):
        from repro.service.tenancy.registry import KeyAnswer

        return KeyAnswer(
            tenant="t", metric="m", count=10, guarantee=1, compactions=0,
            epsilon_bound=0.0, source="resident", engine=engine,
            phis=np.array([0.5]), psi=np.array([5], dtype=np.int64),
            lower=np.array([1.0]), upper=np.array([2.0]),
            max_below=np.array([0], dtype=np.int64),
            max_above=np.array([0], dtype=np.int64),
        )

    def test_answer_engine_byte_roundtrips_every_engine(self):
        """v3 appends one engine byte per answer; every registered name
        survives the trip (the wire code is the tuple index, append-only)."""
        from repro.portfolio import ENGINES

        assert set(proto._ENGINE_NAMES) == set(ENGINES)
        answers = [self._engine_answer(name) for name in proto._ENGINE_NAMES]
        decoded = proto.decode_quantiles_keyed_reply(
            proto.encode_quantiles_keyed_reply(answers)
        )
        assert [a.engine for a in decoded] == list(proto._ENGINE_NAMES)

    def test_unknown_engine_refused_on_encode(self):
        with pytest.raises(DataError, match="unknown answer engine"):
            proto.encode_quantiles_keyed_reply(
                [self._engine_answer("quantum")]
            )

    def test_unknown_engine_code_refused_on_decode(self):
        payload = bytearray(
            proto.encode_quantiles_keyed_reply([self._engine_answer("opaq")])
        )
        # The engine byte is the last field of the fixed head: locate it
        # by re-encoding with a different engine and diffing.
        other = bytearray(
            proto.encode_quantiles_keyed_reply([self._engine_answer("kll")])
        )
        (pos,) = [i for i, (a, b) in enumerate(zip(payload, other)) if a != b]
        payload[pos] = 250
        with pytest.raises(DataError, match="engine"):
            proto.decode_quantiles_keyed_reply(bytes(payload))

    def test_answer_reply_trailing_bytes_detected(self):
        from repro.service.tenancy.registry import KeyAnswer

        answer = KeyAnswer(
            tenant="t", metric="m", count=10, guarantee=1, compactions=0,
            epsilon_bound=0.0, source="resident",
            phis=np.array([0.5]), psi=np.array([5], dtype=np.int64),
            lower=np.array([1.0]), upper=np.array([2.0]),
            max_below=np.array([0], dtype=np.int64),
            max_above=np.array([0], dtype=np.int64),
        )
        payload = proto.encode_quantiles_keyed_reply([answer]) + b"JUNK"
        with pytest.raises(DataError, match="trailing"):
            proto.decode_quantiles_keyed_reply(payload)

    def test_fuzz_keyed_decoders_never_leak_foreign_errors(self):
        rng = np.random.default_rng(99)
        good = proto.encode_quantiles_keyed_request(self.KEYS, [0.5, 0.9])
        for _ in range(200):
            corrupt = bytearray(good)
            for pos in rng.integers(0, len(corrupt), size=4):
                corrupt[pos] = rng.integers(0, 256)
            try:
                proto.decode_quantiles_keyed_request(bytes(corrupt))
            except ReproError:
                pass  # typed: the contract
