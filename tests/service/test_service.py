"""QuantileService: ingest, epochs, queries, backpressure, lifecycle."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError, EstimationError, ServiceError
from repro.obs import MemorySink, tracing
from repro.service import QuantileService, ServiceConfig


def small_config(**kw):
    defaults = dict(num_shards=2, run_size=1_000, sample_size=50)
    defaults.update(kw)
    return ServiceConfig(**defaults)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.num_shards == 4
        assert config.queue_capacity == 64

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_shards": 0},
            {"queue_capacity": 0},
            {"ingest_timeout": 0.0},
            {"sample_size": 0},
            {"snapshot_every": 0},
            {"snapshot_retain": 0},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ConfigError):
            ServiceConfig(**kw)


class TestIngestAndQuery:
    def test_ingest_then_snapshot_then_query(self, rng):
        data = rng.normal(size=20_000)
        with QuantileService(small_config()) as service:
            receipt = service.ingest(data)
            assert receipt == {"accepted": 20_000, "epoch": 0}
            snapshot = service.snapshot()
            assert snapshot.epoch == 1
            assert snapshot.count == 20_000

            result = service.quantiles([0.25, 0.5, 0.75])
            assert result.epoch == 1
            assert result.count == 20_000
            assert result.staleness == 0
            sorted_data = np.sort(data)
            for b in result.bounds:
                true_value = sorted_data[b.rank - 1]
                assert b.lower <= true_value <= b.upper
                assert b.max_between <= 2 * result.guarantee

    def test_query_before_first_epoch_raises(self):
        with QuantileService(small_config()) as service:
            service.ingest([1.0, 2.0, 3.0])
            with pytest.raises(EstimationError, match="no epoch"):
                service.quantiles([0.5])

    def test_scalar_phi_deprecated_but_answered(self, rng):
        with QuantileService(small_config()) as service:
            service.ingest(rng.uniform(size=4_000))
            service.snapshot()
            with pytest.deprecated_call():
                result = service.query(0.5)
            assert len(result.bounds) == 1
            assert result.bounds[0].phi == 0.5

    def test_scalar_ingest_deprecated_but_accepted(self, rng):
        with QuantileService(small_config()) as service:
            with pytest.deprecated_call():
                receipt = service.ingest(1.5)
            assert receipt["accepted"] == 1

    def test_staleness_counts_unsnapshotted_elements(self, rng):
        with QuantileService(small_config()) as service:
            service.ingest(rng.uniform(size=5_000))
            service.snapshot()
            service.ingest(rng.uniform(size=1_234))
            assert service.staleness == 1_234
            assert service.quantiles([0.5]).staleness == 1_234
            service.snapshot()
            assert service.staleness == 0

    def test_snapshot_every_advances_epochs_automatically(self, rng):
        config = small_config(snapshot_every=5_000)
        with QuantileService(config) as service:
            for _ in range(4):
                service.ingest(rng.uniform(size=2_500))
            current = service.current_epoch
            assert current is not None and current.epoch == 2
            assert current.count == 10_000

    def test_epoch_boundaries_depend_on_volume_not_batching(self, rng):
        """The same stream in different batch sizes ends at the same epoch."""
        data = rng.uniform(size=12_000)
        epochs = []
        for step in (1_000, 3_000):
            config = small_config(num_shards=1, snapshot_every=6_000)
            with QuantileService(config) as service:
                for start in range(0, data.size, step):
                    service.ingest(data[start : start + step])
                epochs.append(service.current_epoch.epoch)
        assert epochs[0] == epochs[1] == 2

    def test_snapshot_of_empty_service_raises(self):
        with QuantileService(small_config()) as service:
            with pytest.raises(EstimationError, match="empty service"):
                service.snapshot()

    def test_nan_batch_rejected_whole(self):
        with QuantileService(small_config()) as service:
            with pytest.raises(DataError):
                service.ingest([1.0, float("nan")])
            assert service.stats()["accepted"] == 0


class TestShardPartitioning:
    def test_sharding_does_not_change_guarantee_validity(self, rng):
        """4-way sharding must serve enclosing bounds just like 1 shard."""
        data = rng.normal(size=30_000)
        sorted_data = np.sort(data)
        for shards in (1, 4):
            with QuantileService(small_config(num_shards=shards)) as service:
                service.ingest(data)
                service.snapshot()
                result = service.quantiles([0.1, 0.5, 0.9])
                for b in result.bounds:
                    assert b.lower <= sorted_data[b.rank - 1] <= b.upper

    def test_stats_reports_per_shard_ingest(self, rng):
        with QuantileService(small_config(num_shards=2)) as service:
            service.ingest(rng.uniform(size=10_000))
            service.snapshot()
            per_shard = service.stats()["per_shard"]
            assert len(per_shard) == 2
            assert sum(s["ingested"] for s in per_shard) == 10_000
            assert all(s["ingested"] > 0 for s in per_shard)


class TestBackpressure:
    def test_full_queue_times_out_with_service_error(self):
        # A capacity-1 queue on a worker whose thread never starts: the
        # second submit has no consumer and must hit the backpressure
        # timeout instead of hanging.
        from repro.service.shard import ShardWorker

        config = small_config(
            num_shards=1, queue_capacity=1, ingest_timeout=0.05
        )
        worker = ShardWorker(0, config)
        worker.submit(np.ones(10))  # fills the only slot
        with pytest.raises(ServiceError, match="backpressure"):
            worker.submit(np.ones(10), timeout=0.05)

    def test_rejected_counter_emitted(self):
        from repro.service.shard import ShardWorker

        config = small_config(num_shards=1, queue_capacity=1, ingest_timeout=0.05)
        worker = ShardWorker(0, config)
        worker.submit(np.ones(10))
        sink = MemorySink()
        with tracing(sink):
            with pytest.raises(ServiceError):
                worker.submit(np.ones(7), timeout=0.05)
        assert sink.counter_total("service.ingest.rejected") == 7


class TestLifecycle:
    def test_closed_service_rejects_ingest(self, rng):
        service = QuantileService(small_config())
        service.ingest(rng.uniform(size=1_000))
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.ingest([1.0])
        with pytest.raises(ServiceError, match="closed"):
            service.snapshot()

    def test_close_is_idempotent(self, rng):
        service = QuantileService(small_config())
        service.ingest(rng.uniform(size=1_000))
        service.close()
        service.close()

    def test_close_flushes_final_epoch(self, rng):
        service = QuantileService(small_config())
        service.ingest(rng.uniform(size=2_000))
        assert service.current_epoch is None
        service.close()
        assert service.current_epoch is not None
        assert service.current_epoch.count == 2_000

    def test_close_without_final_snapshot(self, rng):
        service = QuantileService(small_config())
        service.ingest(rng.uniform(size=2_000))
        service.close(final_snapshot=False)
        assert service.current_epoch is None

    def test_queries_still_answered_after_close(self, rng):
        service = QuantileService(small_config())
        service.ingest(rng.uniform(size=2_000))
        service.close()
        assert service.quantiles([0.5]).count == 2_000


class TestObservability:
    def test_ingest_and_snapshot_counters(self, rng):
        sink = MemorySink()
        with tracing(sink):
            with QuantileService(small_config()) as service:
                service.ingest(rng.uniform(size=6_000))
                service.snapshot()
                service.quantiles([0.5, 0.9])
        assert sink.counter_total("service.ingest.elements") == 6_000
        assert sink.counter_total("service.ingest.batches") == 1
        assert sink.counter_total("service.snapshot.epoch") == 1
        assert sink.counter_total("service.snapshot.count") == 6_000
        assert sink.counter_total("service.query.count") == 2
        assert sink.counter_total("service.closed") == 1
        assert sink.spans("service.query")
        assert sink.spans("service.snapshot.merge")
