"""The wire layer: endpoints, status-code mapping, client behaviour."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service import QuantileService, ServiceClient, ServiceConfig, make_server


@pytest.fixture
def served(rng):
    """A live server (port 0 → free port) plus a matching client."""
    config = ServiceConfig(num_shards=2, run_size=1_000, sample_size=50)
    service = QuantileService(config)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, server, ServiceClient(server.url, timeout=10.0)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        service.close(final_snapshot=False)


def raw_request(url, method="GET", body=None, headers=None):
    """Plain urllib round-trip returning (status, parsed body)."""
    request = urllib.request.Request(
        url,
        method=method,
        data=body,
        headers=headers or {"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_health(self, served):
        _, _, client = served
        assert client.health() is True

    def test_ingest_snapshot_query_roundtrip(self, served, rng):
        service, server, client = served
        data = rng.normal(size=10_000)
        receipt = client.ingest(data.tolist())
        assert receipt["accepted"] == 10_000

        snapshot = client.snapshot()
        assert snapshot["epoch"] == 1 and snapshot["count"] == 10_000

        vec = client.quantiles([0.5])
        assert vec.epoch == 1
        sorted_data = np.sort(data)
        assert vec.lower[0] <= sorted_data[vec.ranks[0] - 1] <= vec.upper[0]
        assert vec.max_below[0] + vec.max_above[0] <= 2 * vec.guarantee

    def test_quantile_alias_removed_after_deprecation_cycle(self, served, rng):
        """quantiles().to_dict() replaces the removed v1 quantile()."""
        _, _, client = served
        client.ingest(rng.uniform(size=2_000))
        client.snapshot()
        assert not hasattr(client, "quantile")
        answer = client.quantiles([0.5]).to_dict()
        assert answer["epoch"] == 1
        assert [r["phi"] for r in answer["results"]] == [0.5]

    def test_quantile_get_with_params(self, served, rng):
        _, server, client = served
        client.ingest(rng.uniform(size=4_000).tolist())
        client.snapshot()
        status, body = raw_request(f"{server.url}/quantile?phi=0.25&phi=0.75")
        assert status == 200
        assert [r["phi"] for r in body["results"]] == [0.25, 0.75]

    def test_stats(self, served, rng):
        _, _, client = served
        client.ingest(rng.uniform(size=2_000).tolist())
        client.snapshot()
        stats = client.stats()
        assert stats["accepted"] == 2_000
        assert stats["epoch"] == 1
        assert len(stats["per_shard"]) == 2


class TestErrorMapping:
    def test_unknown_route_404(self, served):
        _, server, _ = served
        status, body = raw_request(f"{server.url}/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_malformed_json_400(self, served):
        _, server, _ = served
        status, body = raw_request(
            f"{server.url}/ingest", method="POST", body=b"{oops"
        )
        assert status == 400
        assert "malformed JSON" in body["error"]

    def test_missing_values_400(self, served):
        _, server, _ = served
        status, body = raw_request(
            f"{server.url}/ingest", method="POST", body=json.dumps({}).encode()
        )
        assert status == 400

    def test_nan_ingest_400(self, served):
        _, server, _ = served
        status, body = raw_request(
            f"{server.url}/ingest",
            method="POST",
            body=json.dumps({"values": [1.0, float("nan")]}).encode(),
        )
        assert status == 400
        assert "NaN" in body["error"]

    def test_query_before_epoch_409(self, served):
        _, server, _ = served
        status, body = raw_request(f"{server.url}/quantile?phi=0.5")
        assert status == 409
        assert "no epoch" in body["error"]

    def test_unparseable_phi_400(self, served, rng):
        _, server, client = served
        client.ingest(rng.uniform(size=2_000).tolist())
        client.snapshot()
        status, _ = raw_request(f"{server.url}/quantile?phi=banana")
        assert status == 400

    def test_snapshot_of_empty_service_409(self, served):
        _, server, _ = served
        status, _ = raw_request(f"{server.url}/snapshot", method="POST")
        assert status == 409

    def test_client_raises_service_error_with_server_message(self, served):
        _, _, client = served
        with pytest.raises(ServiceError, match="HTTP 409"):
            client.quantiles([0.5])

    def test_client_unreachable_host(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestKeyedEndpoints:
    """POST /ingest_keyed and /quantile_keyed on the JSON shim."""

    def test_keyed_roundtrip(self, served, rng):
        _, _, client = served
        data = rng.normal(size=4_000)
        receipt = client.ingest_keyed({("acme", "lat"): data})
        assert receipt == {"elements": 4_000, "keys": 1}
        [answer] = client.quantiles_keyed([("acme", "lat")], [0.5])
        assert (answer.tenant, answer.metric) == ("acme", "lat")
        assert answer.count == 4_000
        sorted_data = np.sort(data)
        assert answer.lower[0] <= sorted_data[answer.psi[0] - 1] <= answer.upper[0]

    def test_keyed_missing_fields_400(self, served):
        _, server, _ = served
        status, _ = raw_request(
            f"{server.url}/ingest_keyed",
            method="POST",
            body=json.dumps({"keys": [["a", "b"]]}).encode(),
        )
        assert status == 400

    def test_keyed_malformed_key_shape_400(self, served):
        _, server, _ = served
        status, body = raw_request(
            f"{server.url}/quantile_keyed",
            method="POST",
            body=json.dumps({"keys": [["only-one"]], "phis": [0.5]}).encode(),
        )
        assert status == 400
        assert "tenant, metric" in body["error"]

    def test_keyed_unknown_key_409(self, served):
        _, server, _ = served
        status, _ = raw_request(
            f"{server.url}/quantile_keyed",
            method="POST",
            body=json.dumps(
                {"keys": [["ghost", "m"]], "phis": [0.5]}
            ).encode(),
        )
        assert status == 409
