"""Spill/restore determinism: the registry's bit-identity properties.

The spill path may not cost accuracy or determinism: a key that went
cold, spilled to disk and came back must answer queries **bit-identical**
to the moment it left memory — across process restarts too — and every
key's ``(g - 1) <= ε·count`` contract must survive arbitrary spill churn.
"""

import struct

import numpy as np
import pytest

from repro.service.tenancy import RegistryConfig, SummaryRegistry

PHI_GRID = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]


def answer_fingerprint(answer) -> bytes:
    """Byte-exact identity of a served keyed answer.

    Floats travel as raw IEEE-754 doubles (no repr rounding); the
    fingerprint covers everything the wire protocol frames.
    """
    blob = struct.pack(
        "!QQqd", answer.count, answer.guarantee, answer.compactions,
        answer.epsilon_bound,
    )
    for arr in (answer.phis, answer.psi, answer.lower, answer.upper,
                answer.max_below, answer.max_above):
        blob += np.ascontiguousarray(arr).tobytes()
    return blob


def config(tmp_path, **kw):
    defaults = dict(
        memory_budget=60_000,
        num_shards=2,
        per_key_epsilon=0.02,
        max_key_samples=64,
        fold_threshold=256,
        rollup_max_samples=512,
        spill_dir=tmp_path / "spills",
    )
    defaults.update(kw)
    return RegistryConfig(**defaults)


def keyed_workload(seed, keys=40, batches=4, batch=300):
    rng = np.random.default_rng(seed)
    for _ in range(batches):
        for i in range(keys):
            yield f"tenant{i % 8}", f"metric{i}", rng.normal(size=batch)


@pytest.mark.parametrize("seed", [0, 7, 1234])
class TestSpillRestoreBitIdentity:
    def test_evict_spill_restore_query_is_bit_identical(self, seed, tmp_path):
        """spill_all() -> restore serves the same bytes as never evicting."""
        registry = SummaryRegistry(config(tmp_path))
        pairs = set()
        for tenant, metric, values in keyed_workload(seed):
            registry.ingest(tenant, metric, values)
            pairs.add((tenant, metric))
        pairs = sorted(pairs)

        before = {
            pair: answer_fingerprint(registry.quantiles(*pair, PHI_GRID))
            for pair in pairs
        }
        # Some keys already went cold under the budget during ingest;
        # spill_all() evicts whatever is still resident, so afterwards
        # every key answers from disk.
        assert registry.spill_all() > 0
        assert registry.stats()["resident_keys"] == 0

        for pair in pairs:
            answer = registry.quantiles(*pair, PHI_GRID)
            assert answer.source == "restored"
            assert answer_fingerprint(answer) == before[pair], pair
        registry.close()

    def test_warm_restart_is_bit_identical(self, seed, tmp_path):
        """close() + a fresh registry over the spill dir: same bytes."""
        registry = SummaryRegistry(config(tmp_path))
        pairs = set()
        for tenant, metric, values in keyed_workload(seed):
            registry.ingest(tenant, metric, values)
            pairs.add((tenant, metric))
        pairs = sorted(pairs)
        before = {
            pair: answer_fingerprint(registry.quantiles(*pair, PHI_GRID))
            for pair in pairs
        }
        rollup_before = answer_fingerprint(registry.quantiles("*", "*", PHI_GRID))
        registry.close()

        restarted = SummaryRegistry(config(tmp_path))
        for pair in pairs:
            answer = restarted.quantiles(*pair, PHI_GRID)
            assert answer.source == "restored"
            assert answer_fingerprint(answer) == before[pair], pair
        # Cross-key rollups survive the restart bit-identically too.
        assert (
            answer_fingerprint(restarted.quantiles("*", "*", PHI_GRID))
            == rollup_before
        )
        restarted.close()

    def test_per_key_guarantee_survives_spill_churn(self, seed, tmp_path):
        """(g-1) <= ε·count for every key, however often it spilled."""
        cfg = config(tmp_path, memory_budget=25_000)
        registry = SummaryRegistry(cfg)
        pairs = set()
        for tenant, metric, values in keyed_workload(seed, keys=60):
            registry.ingest(tenant, metric, values)
            pairs.add((tenant, metric))
        stats = registry.stats()
        assert stats["spills"] > 0, "workload must actually spill"
        assert stats["used_slots"] <= stats["budget_slots"]
        for pair in sorted(pairs):
            answer = registry.quantiles(*pair, PHI_GRID)
            assert answer.epsilon_bound <= cfg.per_key_epsilon, pair
            assert (answer.guarantee - 1) <= cfg.per_key_epsilon * answer.count
        registry.close()
