"""The key model: composition, splitting, validation, wildcards."""

import pytest

from repro.errors import DataError
from repro.service.tenancy import (
    KEY_SEP,
    WILDCARD,
    compose_key,
    split_key,
    validate_component,
)


class TestComponents:
    def test_roundtrip(self):
        key = compose_key("acme", "latency_ms")
        assert key == "acme" + KEY_SEP + "latency_ms"
        assert split_key(key) == ("acme", "latency_ms")

    def test_unicode_components_roundtrip(self):
        key = compose_key("tenant-éè", "métrique")
        assert split_key(key) == ("tenant-éè", "métrique")

    def test_empty_component_rejected(self):
        with pytest.raises(DataError, match="non-empty"):
            validate_component("", "tenant")
        with pytest.raises(DataError, match="non-empty"):
            compose_key("", "latency")

    def test_separator_inside_component_rejected(self):
        with pytest.raises(DataError, match="reserved key separator"):
            compose_key("a" + KEY_SEP + "b", "latency")

    def test_overlong_component_rejected(self):
        with pytest.raises(DataError, match="UTF-8 bytes"):
            validate_component("x" * 256, "metric")
        # 255 bytes is the documented wire bound: accepted.
        assert validate_component("x" * 255, "metric")

    def test_byte_bound_counts_encoded_bytes(self):
        # 200 two-byte characters = 400 UTF-8 bytes: over the bound.
        with pytest.raises(DataError, match="UTF-8 bytes"):
            validate_component("é" * 200, "tenant")

    def test_non_string_rejected(self):
        with pytest.raises(DataError, match="non-empty string"):
            validate_component(42, "tenant")


class TestWildcards:
    def test_wildcards_pass_through_compose(self):
        assert split_key(compose_key(WILDCARD, "latency")) == (WILDCARD, "latency")
        assert split_key(compose_key(WILDCARD, WILDCARD)) == (WILDCARD, WILDCARD)

    def test_split_rejects_malformed(self):
        for bad in ("no-separator", KEY_SEP + "metric", "tenant" + KEY_SEP,
                    "a" + KEY_SEP + "b" + KEY_SEP + "c"):
            with pytest.raises(DataError, match="malformed registry key"):
                split_key(bad)
