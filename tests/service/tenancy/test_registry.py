"""The summary registry: budget, epsilon contract, spill/evict, rollups."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError, EstimationError, ServiceError
from repro.service.tenancy import (
    RegistryConfig,
    SummaryRegistry,
    compact_within_budget,
)


def small_config(tmp_path=None, **kw):
    defaults = dict(
        memory_budget=200_000,
        num_shards=2,
        per_key_epsilon=0.05,
        max_key_samples=64,
        fold_threshold=512,
        rollup_max_samples=256,
    )
    if tmp_path is not None:
        defaults["spill_dir"] = tmp_path / "spills"
    defaults.update(kw)
    return RegistryConfig(**defaults)


class TestConfig:
    def test_defaults_validate(self):
        config = RegistryConfig()
        assert config.shard_budget == config.memory_budget // config.num_shards

    @pytest.mark.parametrize(
        "field, value",
        [
            ("memory_budget", 0),
            ("num_shards", 0),
            ("per_key_epsilon", 0.0),
            ("per_key_epsilon", 1.5),
            ("max_key_samples", 1),
            ("fold_threshold", 0),
            ("rollup_max_samples", 1),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            RegistryConfig(**{field: value})


class TestIngestAndQuery:
    def test_single_key_bounds_enclose_truth(self, rng):
        data = rng.normal(size=20_000)
        with SummaryRegistry(small_config()) as registry:
            registry.ingest("acme", "latency", data)
            answer = registry.quantiles("acme", "latency", [0.25, 0.5, 0.99])
        data = np.sort(data)
        assert answer.count == 20_000 and answer.source == "resident"
        for i, phi in enumerate(answer.phis):
            truth = data[int(np.ceil(phi * data.size)) - 1]
            assert answer.lower[i] <= truth <= answer.upper[i]

    def test_per_key_epsilon_contract_holds(self, rng):
        config = small_config()
        with SummaryRegistry(config) as registry:
            for batch in range(10):
                registry.ingest("acme", "latency", rng.uniform(size=2_000))
            answer = registry.quantiles("acme", "latency", [0.5])
        assert answer.epsilon_bound <= config.per_key_epsilon
        assert (answer.guarantee - 1) <= config.per_key_epsilon * answer.count

    def test_keys_are_isolated(self, rng):
        with SummaryRegistry(small_config()) as registry:
            registry.ingest("a", "m", np.full(100, 1.0))
            registry.ingest("b", "m", np.full(50, 9.0))
            a = registry.quantiles("a", "m", [0.5])
            b = registry.quantiles("b", "m", [0.5])
        assert a.count == 100 and a.upper[0] == 1.0
        assert b.count == 50 and b.lower[0] == 9.0

    def test_unknown_key_is_estimation_error(self):
        with SummaryRegistry(small_config()) as registry:
            with pytest.raises(EstimationError, match="no data"):
                registry.quantiles("ghost", "latency", [0.5])

    def test_frame_validation(self):
        registry = SummaryRegistry(small_config())
        with pytest.raises(DataError, match="counts"):
            registry.ingest_frame(["a\x1fm"], np.array([2, 3]), np.zeros(5))
        with pytest.raises(DataError, match="sum"):
            registry.ingest_frame(["a\x1fm"], np.array([3]), np.zeros(5))
        with pytest.raises(DataError, match="finite"):
            registry.ingest_frame(
                ["a\x1fm"], np.array([1]), np.array([np.nan])
            )
        with pytest.raises(DataError):
            registry.ingest("*", "latency", [1.0])  # wildcard ingest

    def test_closed_registry_refuses(self):
        registry = SummaryRegistry(small_config())
        registry.close()
        with pytest.raises(ServiceError, match="closed"):
            registry.ingest("a", "m", [1.0])
        with pytest.raises(ServiceError, match="closed"):
            registry.quantiles("a", "m", [0.5])


class TestBudget:
    def test_used_slots_never_exceed_budget(self, rng, tmp_path):
        config = small_config(tmp_path, memory_budget=30_000)
        with SummaryRegistry(config) as registry:
            for i in range(200):
                registry.ingest(f"t{i}", "m", rng.uniform(size=200))
                stats = registry.stats()
                assert stats["used_slots"] <= stats["budget_slots"]
            assert registry.stats()["spills"] > 0

    def test_budget_pressure_without_spill_dir_is_retryable(self, rng):
        config = small_config(memory_budget=2_000, per_key_overhead=512)
        registry = SummaryRegistry(config)
        with pytest.raises(ServiceError, match="budget"):
            for i in range(100):
                registry.ingest(f"t{i}", "m", rng.uniform(size=64))

    def test_spilled_key_restores_on_query(self, rng, tmp_path):
        # Tight enough that even the post-fold summaries (~200 slots per
        # key, 60 keys per shard) overflow a shard and force spills.
        config = small_config(tmp_path, memory_budget=9_000)
        data = {}
        with SummaryRegistry(config) as registry:
            for i in range(120):
                values = rng.uniform(size=250)
                data[i] = values
                registry.ingest(f"t{i}", "m", values)
            assert registry.stats()["spilled_keys"] > 0
            # The oldest keys were evicted; query one back.
            answer = registry.quantiles("t0", "m", [0.5])
            assert answer.source == "restored"
            assert answer.count == 250
            truth = np.sort(data[0])[124]
            assert answer.lower[0] <= truth <= answer.upper[0]


class TestRollups:
    def test_global_rollup_counts_everything(self, rng):
        with SummaryRegistry(small_config()) as registry:
            registry.ingest("a", "latency", rng.uniform(size=4_000))
            registry.ingest("b", "latency", rng.uniform(size=3_000))
            registry.ingest("a", "bytes", rng.uniform(size=1_000))
            metric = registry.quantiles("*", "latency", [0.5])
            everything = registry.quantiles("*", "*", [0.5])
        assert metric.source == "rollup:metric" and metric.count == 7_000
        assert everything.source == "rollup:global" and everything.count == 8_000
        assert metric.compactions == -1

    def test_rollups_do_not_touch_cold_keys(self, rng, tmp_path):
        config = small_config(tmp_path, memory_budget=9_000)
        with SummaryRegistry(config) as registry:
            for i in range(120):
                registry.ingest(f"t{i}", "m", rng.uniform(size=250))
            restores_before = registry.stats()["restores"]
            answer = registry.quantiles("*", "*", [0.5])
            assert answer.count == 120 * 250
            assert registry.stats()["restores"] == restores_before

    def test_tenant_wildcard_requires_concrete_metric_or_star(self):
        with SummaryRegistry(small_config()) as registry:
            with pytest.raises(DataError, match="per-tenant rollups"):
                registry.quantiles("acme", "*", [0.5])


class TestCompactWithinBudget:
    def test_backs_off_rather_than_break_epsilon(self, rng):
        from repro.service.tenancy.registry import _exact_delta

        data = np.sort(rng.uniform(size=50_000))
        summary = _exact_delta(data)
        compacted, did = compact_within_budget(
            summary, epsilon=0.001, target=8
        )
        assert (compacted.guaranteed_rank_error() - 1) <= 0.001 * 50_000
        # A laxer epsilon admits a tighter compaction.
        laxer, _ = compact_within_budget(summary, epsilon=0.05, target=8)
        assert laxer.num_samples <= compacted.num_samples
