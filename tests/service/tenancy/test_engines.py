"""Per-tenant engine selection in the multi-tenant registry.

The portfolio makes the per-key summary engine pluggable: the registry
config pins a default engine plus per-tenant overrides (by name or by
policy alias), every answer records the engine that served it, and a
mixed-engine spill directory restores each key through its own engine's
loader.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.portfolio import ENGINES
from repro.service.tenancy import RegistryConfig, SummaryRegistry
from repro.service.tenancy.store import SpillStore

MIXED = (
    ("acme", "kll"),
    ("globex", "smallest-memory"),  # policy alias -> gk
    ("umbrella", "as95"),
)


def config(tmp_path=None, **kw):
    defaults = dict(
        memory_budget=200_000,
        num_shards=2,
        per_key_epsilon=0.05,
        max_key_samples=64,
        fold_threshold=512,
        rollup_max_samples=256,
        tenant_engines=MIXED,
    )
    if tmp_path is not None:
        defaults["spill_dir"] = tmp_path / "spills"
    defaults.update(kw)
    return RegistryConfig(**defaults)


class TestConfig:
    def test_policy_aliases_resolve_at_construction(self):
        cfg = config()
        assert cfg.engine_for("acme") == "kll"
        assert cfg.engine_for("globex") == "gk"
        assert cfg.engine_for("umbrella") == "as95"
        assert cfg.engine_for("anyone-else") == "opaq"

    def test_mapping_form_is_accepted(self):
        cfg = config(tenant_engines={"a": "mergeable-sketch"})
        assert cfg.engine_for("a") == "kll"

    def test_unknown_engine_fails_construction(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            config(engine="quantum")
        with pytest.raises(ConfigError, match="unknown engine"):
            config(tenant_engines=(("a", "quantum"),))

    def test_malformed_pairs_fail_construction(self):
        with pytest.raises(ConfigError, match="pairs"):
            config(tenant_engines=(("a", "kll", "extra"),))
        with pytest.raises(ConfigError, match="empty"):
            config(tenant_engines=(("", "kll"),))


class TestServing:
    def test_answers_carry_their_engine(self, rng):
        with SummaryRegistry(config()) as registry:
            for tenant in ("acme", "globex", "umbrella", "initech"):
                registry.ingest(tenant, "latency", rng.normal(size=4_000))
            for tenant, expected in (
                ("acme", "kll"),
                ("globex", "gk"),
                ("umbrella", "as95"),
                ("initech", "opaq"),
            ):
                answer = registry.quantiles(tenant, "latency", [0.5, 0.99])
                assert answer.engine == expected
                assert answer.to_dict()["engine"] == expected
                assert answer.count == 4_000

    def test_epsilon_contract_holds_for_guaranteed_engines(self, rng):
        with SummaryRegistry(config()) as registry:
            for tenant in ("acme", "globex", "initech"):
                for _ in range(6):
                    registry.ingest(tenant, "m", rng.uniform(size=2_000))
            for tenant in ("acme", "globex", "initech"):
                answer = registry.quantiles(tenant, "m", [0.5])
                assert answer.epsilon_bound <= 0.05, (tenant, answer)

    def test_as95_guarantee_is_vacuous_and_says_so(self, rng):
        with SummaryRegistry(config()) as registry:
            registry.ingest("umbrella", "m", rng.normal(size=3_000))
            answer = registry.quantiles("umbrella", "m", [0.5])
        assert answer.guarantee == answer.count

    def test_rollups_stay_opaq_whatever_the_tenants_run(self, rng):
        with SummaryRegistry(config()) as registry:
            registry.ingest("acme", "m", rng.normal(size=2_000))
            registry.ingest("umbrella", "m", rng.normal(size=2_000))
            answer = registry.quantiles("*", "m", [0.5])
        assert answer.engine == "opaq"
        assert answer.count == 4_000

    def test_stats_count_resident_keys_by_engine(self, rng):
        with SummaryRegistry(config()) as registry:
            registry.ingest("acme", "a", rng.normal(size=1_000))
            registry.ingest("acme", "b", rng.normal(size=1_000))
            registry.ingest("initech", "a", rng.normal(size=1_000))
            stats = registry.stats()
        assert stats["default_engine"] == "opaq"
        assert stats["resident_keys_by_engine"] == {"kll": 2, "opaq": 1}


class TestMixedSpill:
    def test_mixed_engines_spill_and_restore(self, rng, tmp_path):
        frames = {
            tenant: rng.normal(size=6_000)
            for tenant in ("acme", "globex", "umbrella", "initech")
        }
        cfg = config(tmp_path)
        with SummaryRegistry(cfg) as registry:
            for tenant, data in frames.items():
                registry.ingest(tenant, "latency", data)
            assert registry.spill_all() == 4

        # A fresh registry over the same spill directory serves every
        # key through its own engine's loader.
        with SummaryRegistry(cfg) as registry:
            for tenant, expected in (
                ("acme", "kll"),
                ("globex", "gk"),
                ("umbrella", "as95"),
                ("initech", "opaq"),
            ):
                answer = registry.quantiles(tenant, "latency", [0.25, 0.75])
                assert answer.source == "restored"
                assert answer.engine == expected
                assert answer.count == 6_000
                ground = np.sort(frames[tenant])
                if expected in ("opaq", "gk"):
                    for i, psi in enumerate(answer.psi):
                        truth = ground[int(psi) - 1]
                        assert answer.lower[i] <= truth <= answer.upper[i]

    def test_unknown_engine_in_manifest_fails_loudly(self, rng, tmp_path):
        cfg = config(tmp_path)
        with SummaryRegistry(cfg) as registry:
            registry.ingest("acme", "m", rng.normal(size=2_000))
            registry.spill_all()

        store = SpillStore(tmp_path / "spills")  # only knows opaq
        with pytest.raises(DataError, match="engine 'kll'"):
            store.restore("acme\x1fm")
