"""The aggregation tree: rollup correctness, caching, persistence."""

import numpy as np

from repro.core.quantile_phase import bounds_arrays
from repro.service.tenancy import AggregationTree, SpillStore
from repro.service.tenancy.registry import _exact_delta


def exact_delta(data):
    return _exact_delta(np.sort(np.asarray(data, dtype=np.float64)))


class TestRollups:
    def test_global_count_is_exact(self, rng):
        tree = AggregationTree(num_shards=4, max_samples=256)
        total = 0
        for shard in range(4):
            for _ in range(3):
                chunk = rng.uniform(size=500)
                tree.absorb(shard, exact_delta(chunk))
                total += chunk.size
        root = tree.global_summary()
        assert root.count == total

    def test_global_bounds_enclose_truth(self, rng):
        tree = AggregationTree(num_shards=4, max_samples=512)
        everything = []
        for shard in range(4):
            chunk = rng.normal(size=2_000)
            tree.absorb(shard, exact_delta(chunk))
            everything.append(chunk)
        data = np.sort(np.concatenate(everything))
        root = tree.global_summary()
        phis = np.array([0.1, 0.5, 0.9])
        _, lower, upper, _, _, _ = bounds_arrays(root, phis)
        for i, phi in enumerate(phis):
            truth = data[int(np.ceil(phi * data.size)) - 1]
            assert lower[i] <= truth <= upper[i]

    def test_metric_rollups_are_per_metric(self, rng):
        tree = AggregationTree(num_shards=2, max_samples=128)
        tree.absorb_metric("latency", exact_delta(rng.uniform(size=300)))
        tree.absorb_metric("bytes", exact_delta(rng.uniform(size=200)))
        assert tree.metrics() == ["bytes", "latency"]
        assert tree.metric_summary("latency").count == 300
        assert tree.metric_summary("bytes").count == 200
        assert tree.metric_summary("missing") is None

    def test_empty_tree_has_no_root(self):
        assert AggregationTree(num_shards=3, max_samples=64).global_summary() is None


class TestCaching:
    def test_cache_hit_returns_same_object(self, rng):
        tree = AggregationTree(num_shards=4, max_samples=128)
        for shard in range(4):
            tree.absorb(shard, exact_delta(rng.uniform(size=100)))
        first = tree.global_summary()
        assert tree.global_summary() is first

    def test_absorb_invalidates_only_downstream(self, rng):
        tree = AggregationTree(num_shards=4, max_samples=128)
        for shard in range(4):
            tree.absorb(shard, exact_delta(rng.uniform(size=100)))
        before = tree.global_summary()
        tree.absorb(0, exact_delta(rng.uniform(size=50)))
        after = tree.global_summary()
        assert after is not before
        assert after.count == before.count + 50


class TestPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        tree = AggregationTree(num_shards=3, max_samples=256)
        for shard in range(3):
            tree.absorb(shard, exact_delta(rng.uniform(size=400)))
        tree.absorb_metric("latency", exact_delta(rng.uniform(size=150)))
        with SpillStore(tmp_path) as store:
            tree.save_to(store)
        with SpillStore(tmp_path) as store:
            fresh = AggregationTree(num_shards=3, max_samples=256)
            fresh.load_from(store)
        assert fresh.global_summary().count == tree.global_summary().count
        assert fresh.metric_summary("latency").count == 150

    def test_load_folds_extra_partitions_on_shard_shrink(self, rng, tmp_path):
        tree = AggregationTree(num_shards=4, max_samples=256)
        for shard in range(4):
            tree.absorb(shard, exact_delta(rng.uniform(size=250)))
        with SpillStore(tmp_path) as store:
            tree.save_to(store)
        with SpillStore(tmp_path) as store:
            narrower = AggregationTree(num_shards=2, max_samples=256)
            narrower.load_from(store)
        # Partition-invariance of the merge algebra: same global count.
        assert narrower.global_summary().count == 1_000
