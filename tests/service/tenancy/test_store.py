"""The spill store: byte-identical restore, crash-window replay, GC."""

import json

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig
from repro.errors import DataError
from repro.service.tenancy import SpillStore


def summary_fingerprint(summary) -> bytes:
    """Byte-exact identity of a summary: arrays as raw IEEE-754 + scalars."""
    floors = summary.floors
    return b"|".join(
        [
            summary.samples.tobytes(),
            summary.gaps.tobytes(),
            b"" if floors is None else floors.tobytes(),
            repr(
                (summary.num_runs, summary.count, summary.minimum, summary.maximum)
            ).encode(),
        ]
    )


def make_summary(rng, n=2_000):
    return OPAQ(OPAQConfig(run_size=500, sample_size=40)).summarize(
        rng.uniform(size=n)
    )


class TestSpillRestore:
    def test_restore_is_byte_identical(self, rng, tmp_path):
        summary = make_summary(rng)
        with SpillStore(tmp_path) as store:
            store.spill("k", summary, compactions=3, epsilon=0.01)
            restored, record, nbytes = store.restore("k")
        assert nbytes > 0
        assert record.compactions == 3 and record.epsilon == 0.01
        assert summary_fingerprint(restored) == summary_fingerprint(summary)
        np.testing.assert_array_equal(restored.samples, summary.samples)
        np.testing.assert_array_equal(restored.gaps, summary.gaps)

    def test_restore_consumes_the_spill(self, rng, tmp_path):
        with SpillStore(tmp_path) as store:
            store.spill("k", make_summary(rng), compactions=0, epsilon=0.01)
            assert "k" in store and len(store) == 1
            store.restore("k")
            assert "k" not in store and len(store) == 0
            with pytest.raises(DataError, match="not spilled"):
                store.restore("k")

    def test_respill_keeps_last_one_file_per_key(self, rng, tmp_path):
        with SpillStore(tmp_path) as store:
            for _ in range(4):
                store.spill("k", make_summary(rng), compactions=0, epsilon=0.01)
            assert len(list(tmp_path.glob("spill-*.npz"))) == 1

    def test_reopen_replays_manifest(self, rng, tmp_path):
        summary = make_summary(rng)
        with SpillStore(tmp_path) as store:
            store.spill("a", summary, compactions=1, epsilon=0.02)
            store.spill("b", make_summary(rng), compactions=0, epsilon=0.02)
            store.restore("b")
        with SpillStore(tmp_path) as reopened:
            assert reopened.keys() == ["a"]
            restored, record, _ = reopened.restore("a")
            assert record.compactions == 1
            assert summary_fingerprint(restored) == summary_fingerprint(summary)


class TestCrashWindows:
    def test_torn_trailing_manifest_line_ignored(self, rng, tmp_path):
        with SpillStore(tmp_path) as store:
            store.spill("a", make_summary(rng), compactions=0, epsilon=0.01)
        manifest = tmp_path / "SPILLS.jsonl"
        manifest.write_text(manifest.read_text() + '{"op": "spill", "key"')
        with SpillStore(tmp_path) as reopened:
            assert reopened.keys() == ["a"]

    def test_orphan_archives_collected_on_open(self, rng, tmp_path):
        with SpillStore(tmp_path) as store:
            store.spill("a", make_summary(rng), compactions=0, epsilon=0.01)
        # A crash between npz write and manifest append leaves an orphan.
        orphan = tmp_path / "spill-0000009999.npz"
        make_summary(rng).save(orphan)
        with SpillStore(tmp_path) as reopened:
            assert not orphan.exists()
            assert reopened.keys() == ["a"]

    def test_record_with_vanished_file_dropped(self, rng, tmp_path):
        with SpillStore(tmp_path) as store:
            store.spill("a", make_summary(rng), compactions=0, epsilon=0.01)
            record = store._live["a"]
        (tmp_path / record.file).unlink()
        with SpillStore(tmp_path) as reopened:
            assert reopened.keys() == []

    def test_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "SPILLS.jsonl").write_text(
            json.dumps({"op": "head", "magic": "NOTSPILL", "version": 1}) + "\n"
        )
        with pytest.raises(DataError, match="not an OPAQ spill manifest"):
            SpillStore(tmp_path)

    def test_future_manifest_version_rejected(self, tmp_path):
        (tmp_path / "SPILLS.jsonl").write_text(
            json.dumps({"op": "head", "magic": "OPAQSPILL", "version": 99}) + "\n"
        )
        with pytest.raises(DataError, match="version 99"):
            SpillStore(tmp_path)


class TestManifestCompaction:
    def test_churn_compacts_the_log(self, rng, tmp_path):
        summary = make_summary(rng, n=200)
        with SpillStore(tmp_path) as store:
            for _ in range(80):
                store.spill("hot", summary, compactions=0, epsilon=0.01)
            lines = (tmp_path / "SPILLS.jsonl").read_text().splitlines()
            # 80 spill appends, but the rewritten log holds the live set.
            assert len(lines) < 70
        with SpillStore(tmp_path) as reopened:
            assert reopened.keys() == ["hot"]


class TestAux:
    def test_aux_roundtrip_and_replacement(self, rng, tmp_path):
        first, second = make_summary(rng), make_summary(rng)
        with SpillStore(tmp_path) as store:
            store.save_aux("rollup-shard-0", first)
            store.save_aux("rollup-shard-0", second)
            assert store.aux_names() == ["rollup-shard-0"]
        with SpillStore(tmp_path) as reopened:
            loaded = reopened.load_aux("rollup-shard-0")
            assert summary_fingerprint(loaded) == summary_fingerprint(second)
            assert reopened.load_aux("missing") is None
