"""End-to-end tests for the binary asyncio server and batched client.

These drive a live ``ThreadedBinaryServer`` over real sockets — the same
path ``opaq serve`` (default protocol) uses — and pin the error
discipline: application errors keep the connection alive; framing errors
answer with an error frame and then close it; and a hostile peer can
never wedge the server for other connections.

The final class is the bit-identity gate required by the API redesign:
the binary protocol and the legacy HTTP shim must serve byte-identical
(e_l, e_u) bounds for the same ingest sequence, because both are thin
wire layers over the one vectorised ``query_arrays`` kernel.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.errors import ConfigError, DataError, EstimationError, ServiceError
from repro.service import (
    QuantileService,
    ServiceClient,
    ServiceConfig,
    ThreadedBinaryServer,
    make_server,
)
from repro.service import proto

PHI_GRID = [0.1, 0.25, 0.5, 0.75, 0.9]


@pytest.fixture
def served():
    """A live binary server (port 0 → free port) plus a matching client."""
    config = ServiceConfig(num_shards=2, run_size=1_000, sample_size=50)
    service = QuantileService(config)
    server = ThreadedBinaryServer(service, port=0)
    server.start()
    client = ServiceClient(server.url, timeout=10.0)
    try:
        yield service, server, client
    finally:
        client.close()
        server.stop()
        service.close(final_snapshot=False)


def raw_exchange(server, payload_bytes, read_frames=1):
    """Open a raw socket, send arbitrary bytes, read up to ``read_frames``
    reply frames (or until EOF).  Returns (frames, eof_seen)."""
    host, port = server.url.removeprefix("opaq://").rsplit(":", 1)
    frames, eof = [], False
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        sock.sendall(payload_bytes)
        sock.shutdown(socket.SHUT_WR)
        buf = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                eof = True
                break
            buf += chunk
        while len(buf) >= proto.HEADER.size and len(frames) < read_frames:
            opcode, length = proto.parse_header(buf[: proto.HEADER.size])
            total = proto.HEADER.size + length
            frames.append((opcode, buf[proto.HEADER.size : total]))
            buf = buf[total:]
    return frames, eof


class TestBinaryEndToEnd:
    def test_health_ping(self, served):
        _, _, client = served
        assert client.health() is True

    def test_ingest_snapshot_quantiles_roundtrip(self, served, rng):
        _, _, client = served
        data = rng.normal(size=50_000)
        receipt = client.ingest(data)
        assert receipt["accepted"] == 50_000
        snapshot = client.snapshot()
        assert snapshot["epoch"] == 1 and snapshot["count"] == 50_000

        vec = client.quantiles(PHI_GRID)
        assert vec.epoch == 1 and vec.count == 50_000
        sorted_data = np.sort(data)
        for i in range(len(PHI_GRID)):
            true = sorted_data[vec.ranks[i] - 1]
            assert vec.lower[i] <= true <= vec.upper[i]

    def test_stats_carries_both_guarantee_levels(self, served, rng):
        _, _, client = served
        client.ingest(rng.uniform(size=8_000))
        client.snapshot()
        stats = client.stats()
        assert stats["accepted"] == 8_000
        assert len(stats["per_shard"]) == 2
        assert all(s["guarantee"] >= 1 for s in stats["per_shard"])

    def test_pipelined_quantiles_many(self, served, rng):
        _, _, client = served
        client.ingest(rng.uniform(size=10_000))
        client.snapshot()
        vecs = client.quantiles_many([PHI_GRID] * 4)
        assert len(vecs) == 4
        ref = vecs[0]
        for vec in vecs[1:]:
            assert vec.lower.tobytes() == ref.lower.tobytes()
            assert vec.upper.tobytes() == ref.upper.tobytes()

    def test_v1_spellings_removed_after_deprecation_cycle(self, served, rng):
        """Scalar ingest(x) and quantile() completed their deprecation
        cycle: scalars are rejected as data errors, the alias is gone."""
        _, _, client = served
        with pytest.raises(DataError, match="scalar ingest"):
            client.ingest(1.5)
        assert not hasattr(client, "quantile")
        client.ingest(rng.uniform(size=5_000))
        client.snapshot()
        answer = client.quantiles([0.5]).to_dict()
        assert [r["phi"] for r in answer["results"]] == [0.5]


class TestErrorDiscipline:
    def test_app_error_keeps_connection_alive(self, served, rng):
        """A bad φ is the *application's* problem: typed error to the
        client, connection stays usable for the next request."""
        _, _, client = served
        client.ingest(rng.uniform(size=2_000))
        client.snapshot()
        with pytest.raises(EstimationError, match="phi"):
            client.quantiles([1.5])
        # Same socket still answers.
        vec = client.quantiles([0.5])
        assert vec.count == 2_000

    def test_query_before_epoch_is_typed(self, served):
        _, _, client = served
        with pytest.raises(EstimationError, match="no epoch"):
            client.quantiles([0.5])

    def test_nan_ingest_is_typed_and_connection_survives(self, served):
        _, _, client = served
        with pytest.raises(DataError, match="NaN"):
            client.ingest(np.array([1.0, np.nan]))
        assert client.health() is True

    def test_junk_bytes_get_error_frame_then_close(self, served):
        _, server, _ = served
        frames, eof = raw_exchange(server, b"GET / HTTP/1.1\r\n\r\n" * 2)
        assert eof
        assert len(frames) == 1
        opcode, payload = frames[0]
        assert opcode == proto.ERROR_OP
        assert json.loads(payload)["kind"] == "data"

    def test_version_skew_reported_then_close(self, served):
        _, server, _ = served
        v1 = proto.HEADER.pack(proto.MAGIC, 1, proto.Op.PING, 0, 0)
        frames, eof = raw_exchange(server, v1)
        assert eof and frames[0][0] == proto.ERROR_OP
        assert b"version skew" in frames[0][1]

    def test_oversized_length_reported_then_close(self, served):
        _, server, _ = served
        huge = proto.HEADER.pack(
            proto.MAGIC, proto.WIRE_VERSION, proto.Op.INGEST, 0, 1 << 31
        )
        frames, eof = raw_exchange(server, huge)
        assert eof and frames[0][0] == proto.ERROR_OP

    def test_truncated_frame_never_hangs(self, served):
        """A frame that promises more payload than it delivers must end in
        a clean close (readexactly fails at EOF), not a hang."""
        _, server, _ = served
        header = proto.HEADER.pack(
            proto.MAGIC, proto.WIRE_VERSION, proto.Op.INGEST, 0, 1024
        )
        frames, eof = raw_exchange(server, header + b"short")
        assert eof
        assert frames and frames[0][0] == proto.ERROR_OP
        assert b"mid-frame" in frames[0][1]

    def test_unknown_opcode_stays_open(self, served):
        _, server, _ = served
        bogus = proto.HEADER.pack(proto.MAGIC, proto.WIRE_VERSION, 0x42, 0, 0)
        ping = proto.encode_frame(proto.Op.PING)
        frames, _ = raw_exchange(server, bogus + ping, read_frames=2)
        assert frames[0][0] == proto.ERROR_OP
        assert frames[1][0] == proto.Op.PING | proto.REPLY_BIT

    def test_server_survives_hostile_peer(self, served, rng):
        """After a framing-error close, other clients are unaffected."""
        _, server, client = served
        raw_exchange(server, b"\x00" * 64)
        client.ingest(rng.uniform(size=1_000))
        assert client.health() is True

    def test_concurrent_clients(self, served, rng):
        _, server, client = served
        client.ingest(rng.uniform(size=10_000))
        client.snapshot()
        errors = []

        def worker():
            try:
                with ServiceClient(server.url, timeout=10.0) as c:
                    for _ in range(5):
                        c.quantiles(PHI_GRID)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors


class TestClientAddressing:
    def test_bad_scheme_rejected(self):
        with pytest.raises(ConfigError, match="scheme"):
            ServiceClient("ftp://127.0.0.1:9")

    def test_missing_port_rejected(self):
        with pytest.raises(ConfigError, match="host and port"):
            ServiceClient("opaq://127.0.0.1")

    def test_unreachable_binary_endpoint(self):
        client = ServiceClient("opaq://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError):
            client.health()

    def test_double_start_rejected(self):
        config = ServiceConfig(num_shards=1, run_size=500, sample_size=25)
        with QuantileService(config) as service:
            server = ThreadedBinaryServer(service, port=0)
            server.start()
            try:
                with pytest.raises(ServiceError, match="already"):
                    server.start()
            finally:
                server.stop()


class TestBitIdentityGate:
    """Binary and legacy-HTTP answers must be byte-identical doubles."""

    def test_binary_and_http_serve_identical_bounds(self, rng):
        data = rng.normal(size=60_000)
        data[::4] = np.round(data[::4]) + 0.0  # duplicate-heavy, no -0.0
        phis = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]

        def serve_and_query(protocol):
            config = ServiceConfig(
                num_shards=2, run_size=1_000, sample_size=50
            )
            service = QuantileService(config)
            try:
                if protocol == "binary":
                    server = ThreadedBinaryServer(service, port=0)
                    server.start()
                    stop = server.stop
                else:
                    server = make_server(service, port=0)
                    thread = threading.Thread(
                        target=server.serve_forever, daemon=True
                    )
                    thread.start()

                    def stop():
                        server.shutdown()
                        server.server_close()
                        thread.join(timeout=10.0)

                try:
                    with ServiceClient(server.url, timeout=10.0) as client:
                        client.ingest(data)
                        client.snapshot()
                        return client.quantiles(phis)
                finally:
                    stop()
            finally:
                service.close(final_snapshot=False)

        binary = serve_and_query("binary")
        http = serve_and_query("http")

        # The gate: raw IEEE-754 bytes, no approx, no repr rounding.
        assert binary.lower.tobytes() == http.lower.tobytes()
        assert binary.upper.tobytes() == http.upper.tobytes()
        assert binary.ranks.tobytes() == http.ranks.tobytes()
        assert binary.max_below.tobytes() == http.max_below.tobytes()
        assert binary.max_above.tobytes() == http.max_above.tobytes()
        assert binary.guarantee == http.guarantee
        assert binary.epoch == http.epoch and binary.count == http.count


class TestKeyedEndToEnd:
    """INGEST_KEYED / QUANTILES_KEYED over the live binary server."""

    def test_keyed_ingest_and_query(self, served, rng):
        _, _, client = served
        batches = {
            ("acme", "latency"): rng.normal(10.0, 1.0, size=5_000),
            ("acme", "errors"): rng.normal(0.0, 1.0, size=3_000),
            ("globex", "latency"): rng.normal(20.0, 2.0, size=4_000),
        }
        receipt = client.ingest_keyed(batches)
        assert receipt == {"elements": 12_000, "keys": 3}

        answers = client.quantiles_keyed(list(batches), [0.25, 0.5, 0.75])
        assert len(answers) == 3
        for answer, ((tenant, metric), data) in zip(answers, batches.items()):
            assert (answer.tenant, answer.metric) == (tenant, metric)
            assert answer.count == len(data)
            assert answer.source == "resident"
            sorted_data = np.sort(data)
            for i in range(3):
                true = sorted_data[answer.psi[i] - 1]
                assert answer.lower[i] <= true <= answer.upper[i]

    def test_keyed_rollup_over_wire(self, served, rng):
        _, _, client = served
        client.ingest_keyed(
            [("t1", "lat", rng.uniform(size=2_000)),
             ("t2", "lat", rng.uniform(size=3_000))]
        )
        [metric_rollup] = client.quantiles_keyed([("*", "lat")], [0.5])
        assert metric_rollup.source == "rollup:metric"
        assert metric_rollup.count == 5_000
        [global_rollup] = client.quantiles_keyed([("*", "*")], [0.5])
        assert global_rollup.source == "rollup:global"
        assert global_rollup.count == 5_000

    def test_keyed_unknown_key_is_typed(self, served):
        _, _, client = served
        with pytest.raises(EstimationError, match="no data"):
            client.quantiles_keyed([("ghost", "metric")], [0.5])

    def test_keyed_stats_visible(self, served, rng):
        _, _, client = served
        client.ingest_keyed({("a", "m"): rng.uniform(size=1_000)})
        tenancy = client.stats()["tenancy"]
        assert tenancy["resident_keys"] == 1
        assert tenancy["ingested_elements"] == 1_000

    def test_keyed_answers_match_http_shim_bit_identically(self, served, rng):
        """The HTTP compatibility layer must serve the same bytes as the
        binary path for keyed queries too — one registry, two framings."""
        service, _, client = served
        client.ingest_keyed({("acme", "lat"): rng.normal(size=8_000)})
        binary = client.quantiles_keyed([("acme", "lat")], PHI_GRID)

        http_server = make_server(service, port=0)
        thread = threading.Thread(target=http_server.serve_forever, daemon=True)
        thread.start()
        try:
            with ServiceClient(http_server.url, timeout=10.0) as http_client:
                http = http_client.quantiles_keyed([("acme", "lat")], PHI_GRID)
        finally:
            http_server.shutdown()
            http_server.server_close()
            thread.join(timeout=10.0)
        assert binary[0].to_dict() == http[0].to_dict()
        assert binary[0].lower.tobytes() == http[0].lower.tobytes()
        assert binary[0].upper.tobytes() == http[0].upper.tobytes()
