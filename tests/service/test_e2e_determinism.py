"""End-to-end acceptance: the served bounds carry the paper's guarantee,
and a kill + warm-restart reproduces identical answers.

This is the subsystem-level restatement of the paper's Lemma 3: for every
queried φ, the served interval ``[e_l, e_u]`` encloses the true
φ-quantile of everything snapshotted, and at most ``2 × guarantee``
elements of the ingested stream lie strictly between the bounds — where
``guarantee`` is recomputed exactly for the *merged* run layout, not
assumed from the single-stream formula.
"""

import numpy as np
import pytest

from repro.metrics import true_quantiles
from repro.service import QuantileService, ServiceConfig

PHI_GRID = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]


def config(tmp_path=None, shards=4):
    return ServiceConfig(
        num_shards=shards,
        run_size=5_000,
        sample_size=250,
        snapshot_dir=None if tmp_path is None else tmp_path / "snaps",
    )


@pytest.mark.parametrize(
    "distribution",
    ["uniform", "normal", "lognormal", "duplicates"],
)
@pytest.mark.parametrize("shards", [1, 4])
def test_served_bounds_satisfy_deterministic_guarantee(
    rng, distribution, shards
):
    n = 100_000
    if distribution == "uniform":
        data = rng.uniform(0.0, 1.0e6, size=n)
    elif distribution == "normal":
        data = rng.normal(size=n)
    elif distribution == "lognormal":
        data = rng.lognormal(mean=0.0, sigma=2.0, size=n)
    else:
        data = np.round(rng.normal(size=n) * 8.0) / 8.0 + 0.0

    sorted_data = np.sort(data)
    exact = true_quantiles(sorted_data, PHI_GRID)

    with QuantileService(config(shards=shards)) as service:
        # Stream in uneven batches: batching must not affect validity.
        for start in range(0, n, 7_919):
            service.ingest(data[start : start + 7_919])
        snapshot = service.snapshot()
        assert snapshot.count == n
        result = service.query(PHI_GRID)

    guarantee = result.guarantee
    assert guarantee > 0
    for b, true_value in zip(result.bounds, exact):
        psi = b.rank
        assert psi == int(np.ceil(b.phi * n))
        # Enclosure: rank(e_l) <= psi <= rank(e_u).  Expressed on the
        # sorted stream: e_l is <= the psi-th element, e_u is >= it.
        assert b.lower <= sorted_data[psi - 1] <= b.upper
        assert b.lower <= true_value <= b.upper
        # Lemma 3 for the merged layout: the number of stream elements
        # strictly between the served bounds is at most 2n/s_effective.
        between = int(
            np.searchsorted(sorted_data, b.upper, side="left")
            - np.searchsorted(sorted_data, b.lower, side="right")
        )
        assert between <= b.max_between <= 2 * guarantee


def test_kill_and_warm_restart_reproduces_identical_answers(rng, tmp_path):
    n = 60_000
    data = rng.normal(size=n)

    # First life: ingest everything, snapshot, record the answers, then
    # close WITHOUT a final flush — simulating an abrupt kill after the
    # last completed epoch (the on-disk state is the completed epoch).
    with QuantileService(config(tmp_path)) as service:
        service.ingest(data)
        service.snapshot()
        before = service.query(PHI_GRID)
        stats_before = service.stats()
        service.close(final_snapshot=False)

    # Second life: warm restart from disk; no re-ingest.
    with QuantileService(config(tmp_path)) as restarted:
        after = restarted.query(PHI_GRID)
        restarted.close(final_snapshot=False)

    assert after.epoch == before.epoch
    assert after.count == before.count == stats_before["count"]
    assert after.guarantee == before.guarantee
    assert after.staleness == 0
    # Byte-identical served answers, field by field.
    for x, y in zip(before.bounds, after.bounds):
        assert x == y


def test_restart_then_continue_still_satisfies_guarantee(rng, tmp_path):
    """Restart is not just a replay: new data merges under the restored
    base and the combined answer still encloses the combined truth."""
    first, second = rng.normal(size=40_000), rng.normal(loc=3.0, size=20_000)

    with QuantileService(config(tmp_path)) as service:
        service.ingest(first)

    with QuantileService(config(tmp_path)) as restarted:
        restarted.ingest(second)
        snapshot = restarted.snapshot()
        assert snapshot.count == 60_000
        result = restarted.query(PHI_GRID)
        restarted.close(final_snapshot=False)

    sorted_all = np.sort(np.concatenate([first, second]))
    for b in result.bounds:
        assert b.lower <= sorted_all[b.rank - 1] <= b.upper
        between = int(
            np.searchsorted(sorted_all, b.upper, side="left")
            - np.searchsorted(sorted_all, b.lower, side="right")
        )
        assert between <= 2 * result.guarantee
