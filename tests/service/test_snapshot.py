"""Snapshot persistence: atomic store, manifest versioning, warm restart."""

import json

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig
from repro.errors import DataError
from repro.service import EpochSnapshot, QuantileService, ServiceConfig, SnapshotStore


def make_snapshot(rng, epoch=1, n=5_000):
    summary = OPAQ(OPAQConfig(run_size=1_000, sample_size=50)).summarize(
        rng.uniform(size=n)
    )
    return EpochSnapshot(epoch=epoch, summary=summary)


def service_config(tmp_path, **kw):
    defaults = dict(
        num_shards=2,
        run_size=1_000,
        sample_size=50,
        snapshot_dir=tmp_path / "snaps",
    )
    defaults.update(kw)
    return ServiceConfig(**defaults)


class TestSnapshotStore:
    def test_roundtrip(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        snapshot = make_snapshot(rng, epoch=7)
        path = store.save(snapshot)
        assert path.name == "epoch-00000007.npz"

        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.epoch == 7
        assert loaded.count == snapshot.count
        np.testing.assert_array_equal(
            loaded.summary.samples, snapshot.summary.samples
        )
        np.testing.assert_array_equal(loaded.summary.gaps, snapshot.summary.gaps)

    def test_empty_store_loads_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest() is None

    def test_no_tmp_litter_after_save(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng))
        assert not list(tmp_path.glob("*.tmp*"))

    def test_prune_keeps_newest(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        for epoch in range(1, 6):
            store.save(make_snapshot(rng, epoch=epoch), retain=2)
        kept = sorted(p.name for p in tmp_path.glob("epoch-*.npz"))
        assert kept == ["epoch-00000004.npz", "epoch-00000005.npz"]
        assert store.load_latest().epoch == 5

    def test_bad_manifest_magic_rejected(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng))
        manifest = json.loads(store.manifest_path.read_text())
        manifest["magic"] = "NOTSNAP"
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="not an OPAQ snapshot manifest"):
            store.load_latest()

    def test_unknown_manifest_version_rejected(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng))
        manifest = json.loads(store.manifest_path.read_text())
        manifest["version"] = 99
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="version 99"):
            store.load_latest()

    def test_garbage_manifest_rejected(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.manifest_path.write_text("{not json")
        with pytest.raises(DataError, match="unreadable"):
            store.load_latest()


class TestWarmRestart:
    def test_restart_serves_identical_answers(self, rng, tmp_path):
        data = rng.normal(size=20_000)
        phis = [0.05, 0.25, 0.5, 0.75, 0.95]

        with QuantileService(service_config(tmp_path)) as service:
            service.ingest(data)
            service.snapshot()
            before = service.query(phis)

        with QuantileService(service_config(tmp_path)) as restarted:
            assert restarted.restored_epoch is not None
            assert restarted.restored_epoch.epoch == before.epoch
            after = restarted.query(phis)
            restarted.close(final_snapshot=False)

        assert after.epoch == before.epoch
        assert after.count == before.count
        assert after.guarantee == before.guarantee
        assert after.bounds == before.bounds

    def test_restart_keeps_restored_data_under_new_epochs(self, rng, tmp_path):
        first = rng.uniform(size=8_000)
        second = rng.uniform(size=4_000)

        with QuantileService(service_config(tmp_path)) as service:
            service.ingest(first)

        with QuantileService(service_config(tmp_path)) as restarted:
            restarted.ingest(second)
            snapshot = restarted.snapshot()
            # The new epoch covers the restored 8k AND the new 4k.
            assert snapshot.count == 12_000
            assert snapshot.epoch == 2
            assert restarted.staleness == 0

    def test_close_final_snapshot_persists_tail(self, rng, tmp_path):
        service = QuantileService(service_config(tmp_path))
        service.ingest(rng.uniform(size=3_000))
        service.close()  # default: flush a final epoch to disk

        with QuantileService(service_config(tmp_path)) as restarted:
            assert restarted.restored_epoch is not None
            assert restarted.restored_epoch.count == 3_000
            restarted.close(final_snapshot=False)

    def test_no_snapshot_dir_means_no_restore(self, rng):
        config = ServiceConfig(num_shards=2, run_size=1_000, sample_size=50)
        with QuantileService(config) as service:
            assert service.restored_epoch is None
