"""Snapshot persistence: atomic store, manifest versioning, warm restart."""

import json

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig
from repro.errors import DataError
from repro.service import EpochSnapshot, QuantileService, ServiceConfig, SnapshotStore


def make_snapshot(rng, epoch=1, n=5_000):
    summary = OPAQ(OPAQConfig(run_size=1_000, sample_size=50)).summarize(
        rng.uniform(size=n)
    )
    return EpochSnapshot(epoch=epoch, summary=summary)


def service_config(tmp_path, **kw):
    defaults = dict(
        num_shards=2,
        run_size=1_000,
        sample_size=50,
        snapshot_dir=tmp_path / "snaps",
    )
    defaults.update(kw)
    return ServiceConfig(**defaults)


class TestSnapshotStore:
    def test_roundtrip(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        snapshot = make_snapshot(rng, epoch=7)
        path = store.save(snapshot)
        assert path.name == "epoch-00000007.npz"

        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.epoch == 7
        assert loaded.count == snapshot.count
        np.testing.assert_array_equal(
            loaded.summary.samples, snapshot.summary.samples
        )
        np.testing.assert_array_equal(loaded.summary.gaps, snapshot.summary.gaps)

    def test_empty_store_loads_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest() is None

    def test_no_tmp_litter_after_save(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng))
        assert not list(tmp_path.glob("*.tmp*"))

    def test_prune_keeps_newest(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        for epoch in range(1, 6):
            store.save(make_snapshot(rng, epoch=epoch), retain=2)
        kept = sorted(p.name for p in tmp_path.glob("epoch-*.npz"))
        assert kept == ["epoch-00000004.npz", "epoch-00000005.npz"]
        assert store.load_latest().epoch == 5

    def test_bad_manifest_magic_rejected(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng))
        manifest = json.loads(store.manifest_path.read_text())
        manifest["magic"] = "NOTSNAP"
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="not an OPAQ snapshot manifest"):
            store.load_latest()

    def test_unknown_manifest_version_rejected(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng))
        manifest = json.loads(store.manifest_path.read_text())
        manifest["version"] = 99
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="version 99"):
            store.load_latest()

    def test_garbage_manifest_rejected(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.manifest_path.write_text("{not json")
        with pytest.raises(DataError, match="unreadable"):
            store.load_latest()


class TestWarmRestart:
    def test_restart_serves_identical_answers(self, rng, tmp_path):
        data = rng.normal(size=20_000)
        phis = [0.05, 0.25, 0.5, 0.75, 0.95]

        with QuantileService(service_config(tmp_path)) as service:
            service.ingest(data)
            service.snapshot()
            before = service.query(phis)

        with QuantileService(service_config(tmp_path)) as restarted:
            assert restarted.restored_epoch is not None
            assert restarted.restored_epoch.epoch == before.epoch
            after = restarted.query(phis)
            restarted.close(final_snapshot=False)

        assert after.epoch == before.epoch
        assert after.count == before.count
        assert after.guarantee == before.guarantee
        assert after.bounds == before.bounds

    def test_restart_keeps_restored_data_under_new_epochs(self, rng, tmp_path):
        first = rng.uniform(size=8_000)
        second = rng.uniform(size=4_000)

        with QuantileService(service_config(tmp_path)) as service:
            service.ingest(first)

        with QuantileService(service_config(tmp_path)) as restarted:
            restarted.ingest(second)
            snapshot = restarted.snapshot()
            # The new epoch covers the restored 8k AND the new 4k.
            assert snapshot.count == 12_000
            assert snapshot.epoch == 2
            assert restarted.staleness == 0

    def test_close_final_snapshot_persists_tail(self, rng, tmp_path):
        service = QuantileService(service_config(tmp_path))
        service.ingest(rng.uniform(size=3_000))
        service.close()  # default: flush a final epoch to disk

        with QuantileService(service_config(tmp_path)) as restarted:
            assert restarted.restored_epoch is not None
            assert restarted.restored_epoch.count == 3_000
            restarted.close(final_snapshot=False)

    def test_no_snapshot_dir_means_no_restore(self, rng):
        config = ServiceConfig(num_shards=2, run_size=1_000, sample_size=50)
        with QuantileService(config) as service:
            assert service.restored_epoch is None


class TestCrashResilience:
    """Injected-kill coverage of the npz-write -> manifest-swap window."""

    @staticmethod
    def _kill_manifest_swap(monkeypatch):
        """Make os.replace die exactly at the manifest commit point."""
        import os as os_module

        real_replace = os_module.replace

        def injected(src, dst, *args, **kwargs):
            if str(dst).endswith("LATEST.json"):
                raise OSError("injected kill before the manifest swap")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr("repro.service.snapshot.os.replace", injected)

    def test_crash_between_epoch_write_and_manifest_swap(
        self, rng, tmp_path, monkeypatch
    ):
        store = SnapshotStore(tmp_path)
        committed = make_snapshot(rng, epoch=1)
        store.save(committed)

        self._kill_manifest_swap(monkeypatch)
        with pytest.raises(OSError, match="injected kill"):
            store.save(make_snapshot(rng, epoch=2))
        monkeypatch.undo()

        # The uncommitted epoch-2 archive landed, but the manifest still
        # commits epoch 1 — and that is what a warm restart serves.
        assert (tmp_path / "epoch-00000002.npz").exists()
        loaded = store.load_latest()
        assert loaded.epoch == 1
        assert loaded.count == committed.count

    def test_prune_never_drops_the_manifest_referenced_epoch(
        self, rng, tmp_path, monkeypatch
    ):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng, epoch=1))
        self._kill_manifest_swap(monkeypatch)
        with pytest.raises(OSError, match="injected kill"):
            store.save(make_snapshot(rng, epoch=2))
        monkeypatch.undo()

        # epoch-2 is the newest *file* but an orphan; retain=1 must keep
        # the committed epoch-1, not prune it in favour of the orphan.
        store.prune(retain=1)
        assert (tmp_path / "epoch-00000001.npz").exists()
        assert store.load_latest().epoch == 1

        # Recovery: the next successful save commits epoch 2 for real.
        recovered = make_snapshot(rng, epoch=2)
        store.save(recovered, retain=1)
        assert store.load_latest().epoch == 2

    def test_missing_manifest_falls_back_to_newest_archive(
        self, rng, tmp_path
    ):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng, epoch=1), retain=5)
        store.save(make_snapshot(rng, epoch=2), retain=5)
        store.manifest_path.unlink()
        loaded = store.load_latest()
        assert loaded is not None and loaded.epoch == 2

    def test_vanished_referenced_archive_falls_back(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng, epoch=1), retain=5)
        store.save(make_snapshot(rng, epoch=2), retain=5)
        (tmp_path / "epoch-00000002.npz").unlink()
        loaded = store.load_latest()
        assert loaded is not None and loaded.epoch == 1

    def test_open_sweeps_torn_temporaries(self, rng, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(make_snapshot(rng, epoch=1))
        (tmp_path / "epoch-00000002.npz.tmp.npz").write_bytes(b"torn")
        (tmp_path / "LATEST.json.tmp").write_text("torn")
        reopened = SnapshotStore(tmp_path)
        assert not list(tmp_path.glob("*.tmp*"))
        assert reopened.load_latest().epoch == 1
