"""End-to-end integration tests: the full disk-resident workflow."""

import numpy as np

from repro import (
    OPAQ,
    IncrementalOPAQ,
    OPAQConfig,
    OPAQSummary,
    estimate_rank,
    exact_quantiles,
)
from repro.apps import EquiDepthHistogram, LoadBalancer, external_sort
from repro.metrics import dectile_fractions, score_bounds
from repro.storage import MemoryModel, RunReader
from repro.workloads import ZipfGenerator, write_dataset


class TestDiskWorkflow:
    """Generate -> write -> one pass -> query, all through the disk layer."""

    def test_full_pipeline_zipf(self, tmp_path):
        n = 60_000
        ds = write_dataset(
            tmp_path / "zipf.opaq", ZipfGenerator(parameter=0.86), n, seed=11
        )
        memory = 20_000
        config = OPAQConfig.for_memory(n, memory, sample_size=500)
        MemoryModel(memory).validate(n, config.run_size, config.sample_size)

        reader = RunReader(ds, run_size=config.run_size)
        summary = OPAQ(config).summarize(reader)

        # The pass read everything exactly once.
        assert reader.stats.elements_read == n
        assert reader.stats.passes_started == 1

        # Bounds enclose ground truth on every dectile.
        data = ds.read_all()
        sd = np.sort(data)
        phis = dectile_fractions()
        bounds = OPAQ(config).bounds(summary, phis)
        report = score_bounds(
            sd,
            phis,
            np.array([b.lower for b in bounds]),
            np.array([b.upper for b in bounds]),
            sample_size=config.sample_size,
        )
        assert report.within_bounds()

        # Summary survives a round trip and answers identically.
        summary.save(tmp_path / "summary.npz")
        loaded = OPAQSummary.load(tmp_path / "summary.npz")
        b0 = OPAQ(config).bound(loaded, 0.5)
        b1 = OPAQ(config).bound(summary, 0.5)
        assert (b0.lower, b0.upper) == (b1.lower, b1.upper)

    def test_exact_two_pass_on_disk(self, tmp_path):
        n = 40_000
        ds = write_dataset(tmp_path / "u.opaq", ZipfGenerator(), n, seed=5)
        config = OPAQConfig(run_size=8000, sample_size=200)
        phis = [0.25, 0.5, 0.75]
        values, bounds, _ = exact_quantiles(ds, phis, config)
        sd = np.sort(ds.read_all())
        expected = [sd[b.rank - 1] for b in bounds]
        np.testing.assert_array_equal(values, expected)

    def test_sort_then_serve_histogram(self, tmp_path, rng):
        """Sort a file with OPAQ splitters, then build a histogram and
        check range estimates against the sorted truth."""
        from repro.storage import DiskDataset

        data = rng.uniform(0, 1e6, size=50_000)
        src = DiskDataset.create(tmp_path / "src.opaq", data)
        report = external_sort(src, tmp_path / "sorted.opaq", memory=15_000)
        out = report.output.read_all()
        assert np.all(np.diff(out) >= 0)

        config = OPAQConfig(run_size=10_000, sample_size=500)
        summary = OPAQ(config).summarize(src.read_all())
        hist = EquiDepthHistogram(summary, 10)
        sel = hist.selectivity(2.5e5, 7.5e5)
        true = np.count_nonzero((data >= 2.5e5) & (data <= 7.5e5)) / data.size
        assert sel.lower <= true <= sel.upper

    def test_incremental_then_rank_estimation(self, rng):
        config = OPAQConfig(run_size=2000, sample_size=100)
        inc = IncrementalOPAQ(config)
        all_batches = []
        for day in range(4):
            batch = rng.normal(day, 1.0, size=5000)
            all_batches.append(batch)
            inc.update(batch)
        everything = np.concatenate(all_batches)
        sd = np.sort(everything)
        band = estimate_rank(inc.summary, float(np.median(everything)))
        true = int(np.searchsorted(sd, np.median(everything), side="right"))
        assert band.low <= true <= band.high

    def test_load_balance_distribution_shift(self, rng):
        """Splitters from a summary balance even highly skewed data."""
        data = rng.lognormal(0.0, 2.0, size=40_000)
        config = OPAQConfig(run_size=8000, sample_size=400)
        summary = OPAQ(config).summarize(data)
        lb = LoadBalancer(summary, 16)
        rep = lb.report(data)
        assert rep.max_share <= data.size / 16 + lb.guaranteed_extra()
