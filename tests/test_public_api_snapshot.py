"""Snapshot of the public API surface.

A change to any list below is a deliberate API decision: additions belong
in docs/api.md, removals need a deprecation cycle (see the policy there).
This test exists so neither can happen by accident.
"""

import inspect

import repro
import repro.baselines
import repro.core
import repro.obs

TOP_LEVEL = {
    "OPAQ",
    "OPAQConfig",
    "OPAQSummary",
    "QuantileBounds",
    "QuantileEstimator",
    "DataSource",
    "RankBounds",
    "IncrementalOPAQ",
    "estimate_quantiles",
    "estimate_rank",
    "exact_quantiles",
    "DiskDataset",
    "DatasetWriter",
    "RunReader",
    "MemoryModel",
    "ReproError",
    "ConfigError",
    "DataError",
    "EstimationError",
    "ParallelError",
    "ServiceError",
    "SinglePassViolation",
    "__version__",
}

OBS = {
    "Event",
    "Sink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "Tracer",
    "current_tracer",
    "tracing",
    "aggregate",
    "phase_seconds",
    "io_fraction",
    "write_metrics",
}

SERVICE = {
    "ServiceConfig",
    "QuantileService",
    "QueryResult",
    "QuantileVector",
    "ShardRouter",
    "hash_shard_indices",
    "ShardWorker",
    "EpochSnapshot",
    "SnapshotStore",
    "Snapshotter",
    "ServiceClient",
    "ServiceHTTPServer",
    "AsyncServiceServer",
    "ThreadedBinaryServer",
    "make_server",
    "RegistryConfig",
    "SummaryRegistry",
    "KeyAnswer",
}

TENANCY = {
    "KEY_SEP",
    "WILDCARD",
    "AggregationTree",
    "KeyAnswer",
    "RegistryConfig",
    "SpillRecord",
    "SpillStore",
    "SummaryRegistry",
    "compact_within_budget",
    "compose_key",
    "split_key",
    "validate_component",
}

PORTFOLIO = {
    "ENGINES",
    "ENGINE_POLICIES",
    "EngineSpec",
    "resolve_engine",
    "make_engine",
    "OPAQEngine",
    "OpaqKeyState",
    "KLLEngine",
    "KLLSummary",
    "GKEngine",
    "GKSummary",
    "AS95Engine",
    "IntervalSummary",
    "SketchEngine",
    "SketchSummary",
    "compact_within_budget",
    "exact_delta",
}

ESTIMATOR_METHODS = {"summarize", "bounds", "bound", "estimate"}


def test_top_level_surface_is_exactly_the_snapshot():
    assert set(repro.__all__) == TOP_LEVEL


def test_obs_surface_is_exactly_the_snapshot():
    assert set(repro.obs.__all__) == OBS


def test_service_surface_is_exactly_the_snapshot():
    import repro.service

    assert set(repro.service.__all__) == SERVICE


def test_tenancy_surface_is_exactly_the_snapshot():
    import repro.service.tenancy

    assert set(repro.service.tenancy.__all__) == TENANCY


def test_portfolio_surface_is_exactly_the_snapshot():
    import repro.portfolio

    assert set(repro.portfolio.__all__) == PORTFOLIO


def test_engine_registry_is_stable():
    """The engine names and policy aliases are wire/CLI surface: the
    proto v3 engine byte and ``--engine`` both key off these names."""
    from repro.portfolio import ENGINES, ENGINE_POLICIES

    assert set(ENGINES) == {"opaq", "kll", "gk", "as95"}
    assert ENGINE_POLICIES == {
        "deterministic-guarantee": "opaq",
        "mergeable-sketch": "kll",
        "smallest-memory": "gk",
    }


def test_service_client_batched_surface():
    """The redesigned client: batched unkeyed methods plus the keyed
    (multi-tenant) pair.  The v1 spellings — scalar ingest(x) and the
    dict-returning quantile() — completed their deprecation cycle and
    are gone (see docs/api.md)."""
    from repro.service import ServiceClient

    for method in (
        "ingest",
        "ingest_keyed",
        "quantiles",
        "quantiles_keyed",
        "quantiles_many",
        "snapshot",
        "stats",
        "health",
        "close",
    ):
        assert callable(getattr(ServiceClient, method)), method
    assert not hasattr(ServiceClient, "quantile")


def test_streaming_baseline_registry_is_stable():
    assert set(repro.baselines.STREAMING_BASELINES) == {
        "random_sampling",
        "p2",
        "as95",
        "sd77",
        "gk01",
        "tdigest",
        "kll",
    }


def test_estimators_conform_to_protocol():
    from repro.core import IncrementalOPAQ, OPAQ, QuantileEstimator

    for cls in (OPAQ, IncrementalOPAQ):
        assert issubclass(cls, QuantileEstimator), cls.__name__


def test_estimator_query_signatures_agree():
    """OPAQ and IncrementalOPAQ expose the same (summary, ...) shapes."""
    from repro.core import IncrementalOPAQ, OPAQ

    for method in ESTIMATOR_METHODS:
        opaq_params = list(
            inspect.signature(getattr(OPAQ, method)).parameters
        )
        inc_params = list(
            inspect.signature(getattr(IncrementalOPAQ, method)).parameters
        )
        assert opaq_params == inc_params, method


def test_one_shot_classmethod_exists():
    sig = inspect.signature(repro.OPAQ.quantiles)
    assert list(sig.parameters)[:2] == ["source", "phis"]
