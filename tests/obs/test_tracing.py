"""Tracing semantics: determinism, the disabled path, and nesting.

The contract instrumented layers rely on:

- same seed + same config => identical event streams modulo durations
  (``Event.signature()`` excludes the wall-clock field);
- with no tracer installed, instrumentation emits nothing and allocates
  nothing observable;
- the determinism lint family (OPQ3xx) stays clean over the instrumented
  package — the tracer reads the wall clock only inside ``repro.obs``.
"""

from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import lint_paths, render_text
from repro.core import OPAQ, OPAQConfig
from repro.obs import MemorySink, current_tracer, tracing
from repro.parallel import ParallelOPAQ

CONFIG = OPAQConfig(run_size=1000, sample_size=100)


def _traced_run(seed: int, procs: int = 1) -> MemorySink:
    data = np.random.default_rng(seed).uniform(size=10_000)
    sink = MemorySink()
    with tracing(sink):
        if procs > 1:
            ParallelOPAQ(procs, CONFIG, merge_method="bitonic").run(
                data, phis=[0.5, 0.9]
            )
        else:
            est = OPAQ(CONFIG)
            est.bounds(est.summarize(data), [0.5, 0.9])
    return sink


@pytest.mark.parametrize("procs", [1, 4])
def test_event_stream_deterministic_across_runs(procs):
    first = _traced_run(7, procs=procs)
    second = _traced_run(7, procs=procs)
    assert len(first) > 0
    assert first.signatures() == second.signatures()


def test_different_data_changes_the_stream():
    # Counters carry real values (sizes, messages), so distinct inputs of
    # distinct sizes must not produce byte-identical streams.
    a = _traced_run(1)
    data = np.random.default_rng(2).uniform(size=12_345)
    sink = MemorySink()
    with tracing(sink):
        OPAQ(CONFIG).summarize(data)
    assert a.signatures() != sink.signatures()


def test_disabled_tracer_is_ambient_default():
    tracer = current_tracer()
    assert not tracer.enabled
    # Disabled spans are one shared no-op object: no per-call allocation.
    assert tracer.span("phase.sample") is tracer.span("phase.quantile")


def test_no_tracer_means_no_events():
    sink = MemorySink()
    with tracing(sink):
        pass  # instrumented code runs OUTSIDE the scope below
    data = np.random.default_rng(3).uniform(size=5_000)
    est = OPAQ(CONFIG)
    est.bounds(est.summarize(data), [0.5])
    ParallelOPAQ(2, CONFIG).run(data, phis=[0.5])
    assert len(sink) == 0


def test_results_identical_with_and_without_tracing():
    data = np.random.default_rng(4).uniform(size=10_000)
    est = OPAQ(CONFIG)
    plain = est.bounds(est.summarize(data), [0.25, 0.5, 0.75])
    with tracing(MemorySink()):
        traced = est.bounds(est.summarize(data), [0.25, 0.5, 0.75])
    assert [(b.lower, b.upper) for b in plain] == [
        (b.lower, b.upper) for b in traced
    ]


def test_nested_tracing_tees_to_outer_sink():
    outer, inner = MemorySink(), MemorySink()
    data = np.random.default_rng(5).uniform(size=5_000)
    with tracing(outer):
        with tracing(inner):
            OPAQ(CONFIG).summarize(data)
    assert len(inner) > 0
    assert outer.signatures() == inner.signatures()


def test_instrumentation_passes_determinism_lint():
    src = Path(repro.__file__).parent
    result = lint_paths([src], select=["OPQ301", "OPQ302", "OPQ303"])
    assert result.findings == [], "\n" + render_text(result)
