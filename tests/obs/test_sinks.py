"""Events and sinks: the obs layer's data model."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    Event,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
    aggregate,
    io_fraction,
    phase_seconds,
)


def test_event_signature_excludes_duration():
    a = Event(kind="span", name="phase.sample", duration=0.25)
    b = Event(kind="span", name="phase.sample", duration=99.0)
    assert a.signature() == b.signature()


def test_event_to_dict_round_trips_through_json():
    e = Event(
        kind="counter", name="io.bytes", value=800, attrs=(("run", 3),)
    )
    d = json.loads(json.dumps(e.to_dict()))
    assert d["kind"] == "counter"
    assert d["name"] == "io.bytes"
    assert d["value"] == 800
    assert d["attrs"] == {"run": 3}


def test_all_sinks_satisfy_protocol(tmp_path):
    with JsonlSink(tmp_path / "t.jsonl") as jsonl:
        for sink in (NullSink(), MemorySink(), jsonl, TeeSink(MemorySink())):
            assert isinstance(sink, Sink)


def test_memory_sink_counters_and_spans():
    sink = MemorySink()
    sink.emit(Event(kind="counter", name="io.bytes", value=100))
    sink.emit(Event(kind="counter", name="io.bytes", value=200))
    sink.emit(Event(kind="span", name="phase.sample", duration=0.1))
    assert len(sink) == 3
    assert sink.counter_total("io.bytes") == 300
    assert sink.counters() == {"io.bytes": 300}
    assert [e.name for e in sink.spans()] == ["phase.sample"]
    assert sink.spans("nope") == []


def test_jsonl_sink_writes_sorted_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlSink(path) as sink:
        sink.emit(Event(kind="counter", name="a", value=1))
        sink.emit(Event(kind="span", name="b", duration=0.5))
        assert sink.count == 2
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["name"] == "a"


def test_tee_sink_fans_out():
    a, b = MemorySink(), MemorySink()
    tee = TeeSink(a, b)
    tee.emit(Event(kind="counter", name="x", value=1))
    assert len(a) == len(b) == 1


def test_tee_sink_requires_targets():
    with pytest.raises(ConfigError):
        TeeSink()


def test_aggregate_shape(tmp_path):
    events = [
        Event(kind="span", name="phase.sample", duration=0.5),
        Event(kind="span", name="phase.sample", duration=0.25),
        Event(kind="counter", name="io.bytes", value=64),
        Event(
            kind="counter",
            name="spmd.phase_seconds",
            value=2.0,
            attrs=(("phase", "io"),),
        ),
        Event(
            kind="counter",
            name="spmd.phase_seconds",
            value=2.0,
            attrs=(("phase", "sampling"),),
        ),
    ]
    agg = aggregate(events)
    assert agg["schema"] == "repro.obs/v1"
    assert agg["spans"]["phase.sample"]["count"] == 2
    assert agg["spans"]["phase.sample"]["seconds"] == 0.75
    assert agg["counters"]["io.bytes"] == 64
    assert phase_seconds(events) == {"io": 2.0, "sampling": 2.0}
    assert io_fraction(events) == 0.5
