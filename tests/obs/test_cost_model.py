"""Counters versus the paper's analytic cost model — exact, not approximate.

Every quantity below has a closed form in the paper's analysis, so the
emitted counters double as a correctness oracle:

- one pass reads exactly ``n`` elements (``n * 8`` bytes of float64);
- the sorted sample list holds exactly ``r * s`` samples when ``s | m``
  and ``m | n``;
- the bitonic merge of ``p = 2^k`` equal blocks performs
  ``S = k(k+1)/2`` compare-split supersteps of ``p/2`` pairwise
  exchanges, i.e. ``p * S`` message endpoints carrying ``p * rs * S``
  keys in total.
"""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig
from repro.obs import MemorySink, tracing
from repro.parallel import ParallelOPAQ
from repro.storage import DiskDataset

N = 80_000
M = 4_000  # run size: r = 20 runs
S = 400  # samples per run

CONFIG = OPAQConfig(run_size=M, sample_size=S)


@pytest.fixture
def dataset(tmp_path):
    data = np.random.default_rng(11).uniform(0.0, 1.0, size=N)
    return DiskDataset.create(tmp_path / "keys.opaq", data)


def test_io_counters_match_one_pass_exactly(dataset):
    sink = MemorySink()
    with tracing(sink):
        OPAQ(CONFIG).summarize(dataset)
    counters = sink.counters()
    assert counters["io.pass"] == 1
    assert counters["io.elements"] == N
    assert counters["io.bytes"] == N * dataset.dtype.itemsize


def test_sample_list_length_is_r_times_s(dataset):
    sink = MemorySink()
    with tracing(sink):
        OPAQ(CONFIG).summarize(dataset)
    counters = sink.counters()
    r = N // M
    assert counters["sample.runs"] == r
    assert counters["sample.list_length"] == r * S
    assert counters["merge.keys"] == r * S


def test_modelled_selection_comparisons(dataset):
    # The vectorised default engine reports the paper's O(m log s) figure:
    # m * ceil(log2(s + 1)) comparisons per run, r runs.
    sink = MemorySink()
    with tracing(sink):
        OPAQ(CONFIG).summarize(dataset)
    log_s = int(np.ceil(np.log2(S + 1)))
    assert sink.counters()["selection.comparisons"] == N * log_s


def test_measured_selection_work_within_asymptotic_bound(dataset):
    # The recursive multiselect reports *measured* element scans; the
    # paper's bound is O(m log s) per run with a small constant.
    sink = MemorySink()
    config = OPAQConfig(run_size=M, sample_size=S, strategy="floyd_rivest")
    with tracing(sink):
        OPAQ(config).summarize(dataset)
    counters = sink.counters()
    log_s = int(np.ceil(np.log2(S + 1)))
    assert 0 < counters["selection.comparisons"] <= 6 * N * log_s
    assert counters["selection.depth"] >= 1
    assert counters["selection.partitions"] >= 1


@pytest.mark.parametrize("p", [2, 4, 8])
def test_bitonic_merge_message_volume_exact(p):
    # p processors, each holding per_proc elements in runs of M:
    # rs = (per_proc / M) * S samples per local list.
    per_proc = 2 * M
    rs = (per_proc // M) * S
    data = np.random.default_rng(13).uniform(size=p * per_proc)
    sink = MemorySink()
    with tracing(sink):
        ParallelOPAQ(p, CONFIG, merge_method="bitonic").run(data)
    counters = sink.counters()
    k = int(np.log2(p))
    supersteps = k * (k + 1) // 2
    assert counters["spmd.procs"] == p
    assert counters["spmd.messages"] == p * supersteps
    assert counters["spmd.keys"] == p * rs * supersteps


def test_spmd_phase_seconds_cover_the_breakdown():
    data = np.random.default_rng(17).uniform(size=4 * M * 4)
    sink = MemorySink()
    with tracing(sink):
        res = ParallelOPAQ(4, CONFIG).run(data, phis=[0.5])
    phases = {
        e.attributes["phase"]: e.value
        for e in sink.events
        if e.name == "spmd.phase_seconds"
    }
    # The emitted per-phase means reproduce the machine's own breakdown.
    assert phases == pytest.approx(res.machine.phase_totals())
    assert phases["io"] > 0
    assert phases["sampling"] > 0
