"""Tests for the equi-depth discretizer ([AS96] motivation)."""

import numpy as np
import pytest

from repro.apps import EquiDepthDiscretizer
from repro.core import OPAQ, OPAQConfig
from repro.errors import ConfigError, EstimationError


@pytest.fixture
def summary(rng):
    data = rng.lognormal(0.0, 1.5, size=40_000)
    return OPAQ(OPAQConfig(run_size=8000, sample_size=400)).summarize(data), data


class TestEquiDepthDiscretizer:
    def test_validation(self, summary):
        s, _ = summary
        with pytest.raises(ConfigError):
            EquiDepthDiscretizer(s, 1)

    def test_transform_range(self, summary):
        s, data = summary
        disc = EquiDepthDiscretizer(s, 8)
        ids = disc.transform(data)
        assert ids.min() >= 0 and ids.max() <= 7

    def test_populations_near_equal(self, summary):
        """The [AS96] requirement: intervals of near-equal support."""
        s, data = summary
        q = 10
        disc = EquiDepthDiscretizer(s, q)
        counts = np.bincount(disc.transform(data), minlength=q)
        assert np.abs(counts - data.size / q).max() <= disc.max_population_excess()

    def test_partial_completeness_close_to_one(self, summary):
        s, _ = summary
        disc = EquiDepthDiscretizer(s, 10)
        k = disc.partial_completeness()
        assert 1.0 <= k < 1.5

    def test_labels_cover_range_in_order(self, summary):
        s, _ = summary
        disc = EquiDepthDiscretizer(s, 4)
        labels = disc.labels()
        assert len(labels) == 4
        assert labels[0].startswith(f"[{s.minimum:.6g}")
        assert labels[-1].endswith("]")

    def test_label_validation(self, summary):
        s, _ = summary
        disc = EquiDepthDiscretizer(s, 4)
        with pytest.raises(EstimationError):
            disc.interval_label(4)

    def test_transform_monotone(self, summary):
        s, _ = summary
        disc = EquiDepthDiscretizer(s, 6)
        probes = np.linspace(s.minimum, s.maximum, 50)
        ids = disc.transform(probes)
        assert np.all(np.diff(ids) >= 0)
