"""Tests for external sorting with OPAQ splitters."""

import numpy as np
import pytest

from repro.apps import external_sort
from repro.core import OPAQConfig
from repro.errors import ConfigError


class TestExternalSort:
    def test_sorts_correctly(self, tmp_path, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        report = external_sort(
            ds,
            tmp_path / "out.opaq",
            memory=15_000,
            config=OPAQConfig(run_size=5000, sample_size=500),
        )
        out = report.output.read_all()
        assert np.all(np.diff(out) >= 0)
        np.testing.assert_array_equal(out, np.sort(uniform_data))

    def test_buckets_respect_memory(self, tmp_path, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        memory = 12_000
        report = external_sort(
            ds,
            tmp_path / "out.opaq",
            memory=memory,
            config=OPAQConfig(run_size=5000, sample_size=500),
        )
        assert report.num_buckets >= uniform_data.size // memory
        assert report.guaranteed_max_bucket <= memory
        assert report.passes_over_input == 2

    def test_derives_config_from_memory(self, tmp_path, dataset_factory, rng):
        data = rng.uniform(size=30_000)
        ds = dataset_factory(data)
        report = external_sort(ds, tmp_path / "out.opaq", memory=10_000)
        np.testing.assert_array_equal(report.output.read_all(), np.sort(data))

    def test_heavy_duplicates_streamed(self, tmp_path, dataset_factory, rng):
        """A duplicate band bigger than memory must still sort correctly."""
        data = np.concatenate(
            [np.full(30_000, 5.0), rng.uniform(0.0, 10.0, size=20_000)]
        )
        rng.shuffle(data)
        ds = dataset_factory(data)
        report = external_sort(ds, tmp_path / "out.opaq", memory=12_000)
        out = report.output.read_all()
        np.testing.assert_array_equal(out, np.sort(data))

    def test_data_fits_single_bucket(self, tmp_path, dataset_factory, rng):
        data = rng.uniform(size=5000)
        ds = dataset_factory(data)
        report = external_sort(
            ds,
            tmp_path / "out.opaq",
            memory=50_000,
            config=OPAQConfig(run_size=5000, sample_size=100),
        )
        assert report.num_buckets == 1
        np.testing.assert_array_equal(report.output.read_all(), np.sort(data))

    def test_temp_files_cleaned_up(self, tmp_path, dataset_factory, rng):
        data = rng.uniform(size=20_000)
        ds = dataset_factory(data)
        external_sort(
            ds,
            tmp_path / "out.opaq",
            memory=6000,
            config=OPAQConfig(run_size=2000, sample_size=200),
            workdir=tmp_path / "work",
        )
        leftovers = list((tmp_path / "work").glob(".sort_bucket_*"))
        assert leftovers == []

    def test_memory_too_small(self, tmp_path, dataset_factory, rng):
        ds = dataset_factory(rng.uniform(size=10_000))
        with pytest.raises(ConfigError):
            external_sort(ds, tmp_path / "out.opaq", memory=100)

    def test_imbalance_metric(self, tmp_path, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        report = external_sort(
            ds,
            tmp_path / "out.opaq",
            memory=15_000,
            config=OPAQConfig(run_size=5000, sample_size=500),
        )
        assert report.imbalance >= 1.0
        assert report.max_bucket == max(report.bucket_sizes)
