"""Tests for equi-depth histograms and selectivity estimation."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import EquiDepthHistogram
from repro.core import OPAQ, OPAQConfig
from repro.errors import ConfigError, EstimationError


@pytest.fixture
def summary(uniform_data):
    return OPAQ(OPAQConfig(run_size=5000, sample_size=500)).summarize(uniform_data)


class TestHistogramStructure:
    def test_boundary_count(self, summary):
        h = EquiDepthHistogram(summary, 10)
        assert h.boundaries.size == 9
        assert np.all(np.diff(h.boundaries) >= 0)
        assert h.depth == summary.count / 10

    def test_single_bucket(self, summary):
        h = EquiDepthHistogram(summary, 1)
        assert h.boundaries.size == 0
        assert h.max_depth_error() == 0

    def test_bucket_validation(self, summary):
        with pytest.raises(ConfigError):
            EquiDepthHistogram(summary, 0)

    def test_bucket_of(self, summary, uniform_data):
        h = EquiDepthHistogram(summary, 4)
        assert h.bucket_of(uniform_data.min() - 1) == 0
        assert h.bucket_of(uniform_data.max() + 1) == 3

    def test_buckets_near_equi_depth(self, summary, uniform_data):
        h = EquiDepthHistogram(summary, 10)
        counts = np.bincount(
            np.searchsorted(h.boundaries, uniform_data, side="right"), minlength=10
        )
        assert np.abs(counts - h.depth).max() <= h.max_depth_error()

    def test_describe(self, summary):
        text = EquiDepthHistogram(summary, 4).describe()
        assert "4 buckets" in text
        assert text.count("bucket ") == 4


class TestSelectivity:
    def test_bands_contain_truth(self, summary, uniform_data, sorted_uniform):
        h = EquiDepthHistogram(summary, 10)
        lo, hi = 2.0e8, 7.5e8
        est = h.selectivity(lo, hi)
        true = np.count_nonzero((uniform_data >= lo) & (uniform_data <= hi)) / uniform_data.size
        assert est.lower <= true <= est.upper
        assert abs(est.estimate - true) <= est.width

    def test_empty_range(self, summary):
        est = summary and EquiDepthHistogram(summary, 4).selectivity(-2.0, -1.0)
        assert est.upper <= 0.01
        assert est.lower == 0.0

    def test_full_range(self, summary, uniform_data):
        h = EquiDepthHistogram(summary, 4)
        est = h.selectivity(uniform_data.min(), uniform_data.max())
        assert est.upper == 1.0
        assert est.lower > 0.98

    def test_invalid_range(self, summary):
        with pytest.raises(EstimationError):
            EquiDepthHistogram(summary, 4).selectivity(2.0, 1.0)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        lo=st.floats(min_value=0, max_value=1e9),
        width=st.floats(min_value=0, max_value=1e9),
    )
    def test_property_band_contains_truth(self, summary, uniform_data, lo, width):
        h = EquiDepthHistogram(summary, 10)
        est = h.selectivity(lo, lo + width)
        true = (
            np.count_nonzero((uniform_data >= lo) & (uniform_data <= lo + width))
            / uniform_data.size
        )
        assert est.lower - 1e-12 <= true <= est.upper + 1e-12
