"""Tests for the equi-width histogram strawman."""

import numpy as np
import pytest

from repro.apps import EquiWidthHistogram
from repro.errors import ConfigError, EstimationError


class TestEquiWidthHistogram:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EquiWidthHistogram(1.0, 1.0, 10)
        with pytest.raises(ConfigError):
            EquiWidthHistogram(0.0, 1.0, 0)

    def test_counts_conserved(self, rng):
        h = EquiWidthHistogram(0.0, 1.0, 16)
        h.update(rng.uniform(size=5000))
        h.update(rng.uniform(size=5000))
        assert h.n == 10_000
        assert h.counts.sum() == 10_000

    def test_out_of_range_clamped(self):
        h = EquiWidthHistogram(0.0, 1.0, 4)
        h.update(np.array([-1.0, 0.5, 2.0]))
        assert h.counts.sum() == 3
        assert h.counts[0] >= 1 and h.counts[-1] >= 1

    def test_uniform_selectivity_accurate(self, rng):
        data = rng.uniform(size=100_000)
        h = EquiWidthHistogram(0.0, 1.0, 100)
        h.update(data)
        true = np.count_nonzero((data >= 0.2) & (data <= 0.7)) / data.size
        assert abs(h.selectivity(0.2, 0.7) - true) < 0.01

    def test_uniform_quantiles_accurate(self, rng):
        data = rng.uniform(size=100_000)
        h = EquiWidthHistogram(0.0, 1.0, 100)
        h.update(data)
        for phi in (0.25, 0.5, 0.75):
            assert abs(h.quantile(phi) - phi) < 0.01

    def test_skew_breaks_it(self, rng):
        """The intro's claim: equal-width + skew = large relative errors."""
        data = np.concatenate(
            [rng.uniform(0.0, 0.005, size=95_000), rng.uniform(0.0, 1.0, size=5_000)]
        )
        h = EquiWidthHistogram(0.0, 1.0, 100)
        h.update(data)
        # Nearly everything is in cell 0; a narrow range inside that cell
        # gets a wildly wrong uniform-within-cell estimate.
        true = np.count_nonzero((data >= 0.0) & (data <= 0.001)) / data.size
        est = h.selectivity(0.0, 0.001)
        assert abs(est - true) / true > 0.3

    def test_requires_data(self):
        h = EquiWidthHistogram(0.0, 1.0, 4)
        with pytest.raises(EstimationError):
            h.selectivity(0.1, 0.2)
        with pytest.raises(EstimationError):
            h.quantile(0.5)

    def test_range_validation(self, rng):
        h = EquiWidthHistogram(0.0, 1.0, 4)
        h.update(rng.uniform(size=10))
        with pytest.raises(EstimationError):
            h.selectivity(0.5, 0.4)
        with pytest.raises(EstimationError):
            h.quantile(0.0)
