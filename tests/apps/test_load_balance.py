"""Tests for the quantile-splitter load balancer."""

import numpy as np
import pytest

from repro.apps import LoadBalancer
from repro.core import OPAQ, OPAQConfig
from repro.errors import ConfigError


@pytest.fixture
def summary(uniform_data):
    return OPAQ(OPAQConfig(run_size=5000, sample_size=500)).summarize(uniform_data)


class TestLoadBalancer:
    def test_cut_count(self, summary):
        lb = LoadBalancer(summary, 8)
        assert lb.cuts.size == 7

    def test_single_worker(self, summary, uniform_data):
        lb = LoadBalancer(summary, 1)
        rep = lb.report(uniform_data)
        assert rep.counts.tolist() == [uniform_data.size]
        assert rep.imbalance == 1.0

    def test_worker_validation(self, summary):
        with pytest.raises(ConfigError):
            LoadBalancer(summary, 0)

    def test_assignment_in_range(self, summary, uniform_data):
        lb = LoadBalancer(summary, 8)
        assign = lb.assign(uniform_data)
        assert assign.min() >= 0 and assign.max() <= 7

    def test_balance_within_guarantee(self, summary, uniform_data):
        lb = LoadBalancer(summary, 8)
        rep = lb.report(uniform_data)
        ideal = uniform_data.size / 8
        assert rep.max_share <= ideal + lb.guaranteed_extra()

    def test_imbalance_close_to_one(self, summary, uniform_data):
        """With s=500 the guarantee is ~n/s per side: ~1.6% of a share."""
        lb = LoadBalancer(summary, 8)
        rep = lb.report(uniform_data)
        assert rep.imbalance < 1.05

    def test_assignment_respects_cut_order(self, summary):
        lb = LoadBalancer(summary, 4)
        cuts = lb.cuts
        below = lb.assign(np.array([cuts[0] - 1.0]))[0]
        above = lb.assign(np.array([cuts[-1] + 1.0]))[0]
        assert below == 0
        assert above == 3
