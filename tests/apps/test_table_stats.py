"""Tests for the optimizer-style table statistics."""

import numpy as np
import pytest

from repro.apps import ConjunctionEstimate, Predicate, TableStatistics
from repro.core import OPAQConfig
from repro.errors import ConfigError, EstimationError
from repro.storage import TableDataset


@pytest.fixture
def table(tmp_path, rng):
    n = 30_000
    # Correlated columns: b depends on a, so independence is wrong and
    # the Frechet bands must still hold.
    a = rng.uniform(0.0, 1.0, size=n)
    b = a * 0.5 + rng.uniform(0.0, 0.5, size=n)
    c = rng.lognormal(0.0, 1.0, size=n)
    return TableDataset.create(tmp_path / "t", {"a": a, "b": b, "c": c})


@pytest.fixture
def stats(table):
    config = OPAQConfig(run_size=6000, sample_size=300)
    return TableStatistics.collect(table, config)


class TestCollect:
    def test_columns_and_rows(self, stats, table):
        assert set(stats.columns) == {"a", "b", "c"}
        assert stats.row_count == table.row_count

    def test_subset_of_columns(self, table):
        config = OPAQConfig(run_size=6000, sample_size=300)
        stats = TableStatistics.collect(table, config, columns=["a"])
        assert stats.columns == ["a"]
        with pytest.raises(EstimationError):
            stats.selectivity(Predicate("b", 0.0, 1.0))

    def test_mismatched_counts_rejected(self, stats, rng):
        from repro.core import OPAQ

        config = OPAQConfig(run_size=100, sample_size=10)
        odd = OPAQ(config).summarize(rng.uniform(size=500))
        with pytest.raises(ConfigError, match="disagree"):
            TableStatistics({"a": stats.summary("a"), "odd": odd})


class TestSingleColumn:
    def test_band_contains_truth(self, stats, table):
        data = table.read_columns(["a"])["a"]
        est = stats.selectivity(Predicate("a", 0.2, 0.7))
        true = np.count_nonzero((data >= 0.2) & (data <= 0.7)) / data.size
        assert est.lower <= true <= est.upper

    def test_predicate_validation(self):
        with pytest.raises(ConfigError):
            Predicate("a", 1.0, 0.0)


class TestConjunction:
    def test_frechet_band_contains_truth_despite_correlation(self, stats, table):
        cols = table.read_columns(["a", "b"])
        preds = [Predicate("a", 0.5, 1.0), Predicate("b", 0.5, 1.0)]
        est = stats.conjunction(preds)
        true = (
            np.count_nonzero(
                (cols["a"] >= 0.5) & (cols["a"] <= 1.0)
                & (cols["b"] >= 0.5) & (cols["b"] <= 1.0)
            )
            / table.row_count
        )
        assert est.lower - 1e-9 <= true <= est.upper + 1e-9
        # Correlation makes the independence estimate visibly wrong here
        # (~0.25 estimated vs ~0.38 true) while the Frechet band is honest
        # about the uncertainty.
        assert abs(est.independence - true) > 0.05

    def test_independence_product(self, stats):
        p1 = Predicate("a", 0.0, 0.5)
        p2 = Predicate("c", 0.0, 1.0)
        est = stats.conjunction([p1, p2])
        s1 = stats.selectivity(p1).estimate
        s2 = stats.selectivity(p2).estimate
        assert est.independence == pytest.approx(s1 * s2)

    def test_upper_bound_is_min(self, stats):
        est = stats.conjunction(
            [Predicate("a", 0.0, 0.1), Predicate("c", 0.0, 1e9)]
        )
        assert est.upper <= stats.selectivity(Predicate("a", 0.0, 0.1)).upper + 1e-12

    def test_empty_conjunction_rejected(self, stats):
        with pytest.raises(EstimationError):
            stats.conjunction([])

    def test_estimated_rows(self, stats):
        est = stats.estimated_rows([Predicate("a", 0.0, 0.5)])
        assert 0.4 * stats.row_count < est < 0.6 * stats.row_count

    def test_width_property(self, stats):
        est = stats.conjunction([Predicate("a", 0.0, 0.5)])
        assert isinstance(est, ConjunctionEstimate)
        assert est.width == pytest.approx(est.upper - est.lower)


class TestFrechetProperty:
    def test_frechet_band_always_contains_truth(self, rng):
        """Hypothesis-style sweep without fixtures: random correlation
        structures, random predicates — the Frechet band must never lose
        the true conjunctive selectivity."""
        from repro.core import OPAQ, OPAQConfig
        from repro.apps import TableStatistics

        config = OPAQConfig(run_size=2000, sample_size=200)
        for trial in range(10):
            trial_rng = np.random.default_rng(trial)
            n = 10_000
            a = trial_rng.uniform(size=n)
            mix = trial_rng.uniform(-1.0, 1.0)
            b = np.clip(mix * a + (1 - abs(mix)) * trial_rng.uniform(size=n), 0, 1)
            stats = TableStatistics(
                {
                    "a": OPAQ(config).summarize(a),
                    "b": OPAQ(config).summarize(b),
                }
            )
            lo_a, hi_a = sorted(trial_rng.uniform(size=2))
            lo_b, hi_b = sorted(trial_rng.uniform(size=2))
            est = stats.conjunction(
                [Predicate("a", lo_a, hi_a), Predicate("b", lo_b, hi_b)]
            )
            true = (
                np.count_nonzero(
                    (a >= lo_a) & (a <= hi_a) & (b >= lo_b) & (b <= hi_b)
                )
                / n
            )
            assert est.lower - 1e-9 <= true <= est.upper + 1e-9, (
                trial,
                mix,
                true,
                (est.lower, est.upper),
            )


class TestPersistence:
    def test_save_load_roundtrip(self, stats, tmp_path):
        stats.save(tmp_path / "catalog")
        loaded = TableStatistics.load(tmp_path / "catalog")
        assert set(loaded.columns) == set(stats.columns)
        assert loaded.row_count == stats.row_count
        p = Predicate("a", 0.2, 0.7)
        a, b = stats.selectivity(p), loaded.selectivity(p)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_load_missing_catalog(self, tmp_path):
        from repro.errors import DataError

        with pytest.raises(DataError, match="no statistics catalog"):
            TableStatistics.load(tmp_path / "nope")
