"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import (
    GENERATOR_NAMES,
    ConstantGenerator,
    FewDistinctGenerator,
    NormalGenerator,
    SortedGenerator,
    UniformGenerator,
    ZipfGenerator,
    make_generator,
)


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_size_and_determinism(self, name):
        gen = make_generator(name)
        a = gen.generate(10_000, seed=42)
        b = gen.generate(10_000, seed=42)
        assert a.size == 10_000
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_seed_changes_output(self, name):
        gen = make_generator(name)
        if name == "constant":
            pytest.skip("constant data ignores the seed by definition")
        a = gen.generate(10_000, seed=1)
        b = gen.generate(10_000, seed=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_rejects_nonpositive_n(self, name):
        with pytest.raises(ConfigError):
            make_generator(name).generate(0, seed=1)

    def test_unknown_generator(self):
        with pytest.raises(ConfigError, match="unknown generator"):
            make_generator("cauchy")


class TestDuplicates:
    def test_paper_duplicate_count_uniform(self):
        n = 50_000
        data = UniformGenerator().generate(n, seed=7)
        n_distinct = np.unique(data).size
        # Exactly n/10 duplicate draws (up to collisions, absent for floats).
        assert n - n_distinct == n // 10

    def test_paper_duplicate_count_zipf(self):
        n = 50_000
        data = ZipfGenerator().generate(n, seed=7)
        assert n - np.unique(data).size == n // 10

    def test_zero_duplicates(self):
        data = UniformGenerator(duplicate_fraction=0.0).generate(1000, seed=1)
        assert np.unique(data).size == 1000

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            UniformGenerator(duplicate_fraction=1.0)
        with pytest.raises(ConfigError):
            UniformGenerator(duplicate_fraction=-0.1)


class TestUniform:
    def test_range(self):
        gen = UniformGenerator(lo=10.0, hi=20.0)
        data = gen.generate(10_000, seed=3)
        assert data.min() >= 10.0 and data.max() < 20.0

    def test_roughly_uniform(self):
        data = UniformGenerator(lo=0.0, hi=1.0).generate(100_000, seed=3)
        hist, _ = np.histogram(data, bins=10, range=(0, 1))
        assert hist.min() > 0.08 * data.size  # each decile near 10%


class TestZipf:
    def test_paper_convention_parameter_one_is_uniformish(self):
        # parameter 1 -> exponent 0 -> equal weights.
        gen = ZipfGenerator(parameter=1.0)
        assert gen.exponent == 0.0

    def test_skew_increases_as_parameter_decreases(self):
        n = 50_000
        mild = ZipfGenerator(parameter=0.9).generate(n, seed=5)
        harsh = ZipfGenerator(parameter=0.1).generate(n, seed=5)
        # Value mass concentrates near the low end when skew is high:
        # compare the median's position within the range.
        rel_mild = np.median(mild) / mild.max()
        rel_harsh = np.median(harsh) / harsh.max()
        assert rel_harsh < rel_mild

    def test_parameter_validation(self):
        with pytest.raises(ConfigError, match="zipf parameter"):
            ZipfGenerator(parameter=1.5)
        with pytest.raises(ConfigError):
            ZipfGenerator(parameter=-0.1)

    def test_values_in_domain(self):
        data = ZipfGenerator(lo=0.0, hi=100.0).generate(10_000, seed=1)
        assert data.min() >= 0.0 and data.max() <= 100.0


class TestStressGenerators:
    def test_sorted_ascending(self):
        data = SortedGenerator().generate(1000, seed=1)
        assert np.all(np.diff(data) >= 0)

    def test_sorted_descending(self):
        data = SortedGenerator(descending=True).generate(1000, seed=1)
        assert np.all(np.diff(data) <= 0)

    def test_constant(self):
        data = ConstantGenerator(value=5.0).generate(100, seed=1)
        assert np.all(data == 5.0)

    def test_few_distinct(self):
        data = FewDistinctGenerator(k=4).generate(10_000, seed=1)
        assert np.unique(data).size <= 4

    def test_few_distinct_validation(self):
        with pytest.raises(ConfigError):
            FewDistinctGenerator(k=0).generate(10, seed=1)

    def test_normal_moments(self):
        data = NormalGenerator(mean=3.0, std=2.0, duplicate_fraction=0.0).generate(
            100_000, seed=1
        )
        assert abs(data.mean() - 3.0) < 0.05
        assert abs(data.std() - 2.0) < 0.05
