"""Tests for materialising workloads to disk."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import UniformGenerator, dataset_cache, write_dataset


class TestWriteDataset:
    def test_writes_requested_size(self, tmp_path):
        ds = write_dataset(tmp_path / "d.opaq", UniformGenerator(), 10_000, seed=1)
        assert ds.count == 10_000

    def test_chunked_generation_bounded_memory(self, tmp_path):
        ds = write_dataset(
            tmp_path / "d.opaq", UniformGenerator(), 10_000, seed=1, chunk=1000
        )
        assert ds.count == 10_000
        data = ds.read_all()
        # Still roughly uniform despite per-chunk generation.
        assert 0.45e9 < np.median(data) < 0.55e9

    def test_deterministic(self, tmp_path):
        a = write_dataset(tmp_path / "a.opaq", UniformGenerator(), 5000, seed=9)
        b = write_dataset(tmp_path / "b.opaq", UniformGenerator(), 5000, seed=9)
        np.testing.assert_array_equal(a.read_all(), b.read_all())

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            write_dataset(tmp_path / "d.opaq", UniformGenerator(), 0, seed=1)
        with pytest.raises(ConfigError):
            write_dataset(tmp_path / "d.opaq", UniformGenerator(), 10, seed=1, chunk=0)


class TestDatasetCache:
    def test_cache_hit_reuses_file(self, tmp_path):
        gen = UniformGenerator()
        a = dataset_cache(tmp_path, gen, 1000, seed=1)
        mtime = a.path.stat().st_mtime_ns
        b = dataset_cache(tmp_path, gen, 1000, seed=1)
        assert b.path == a.path
        assert b.path.stat().st_mtime_ns == mtime

    def test_different_params_different_files(self, tmp_path):
        gen = UniformGenerator()
        a = dataset_cache(tmp_path, gen, 1000, seed=1)
        b = dataset_cache(tmp_path, gen, 1000, seed=2)
        c = dataset_cache(tmp_path, gen, 2000, seed=1)
        assert len({a.path, b.path, c.path}) == 3

    def test_corrupt_cache_regenerated(self, tmp_path):
        gen = UniformGenerator()
        a = dataset_cache(tmp_path, gen, 1000, seed=1)
        a.path.write_bytes(b"garbage")
        b = dataset_cache(tmp_path, gen, 1000, seed=1)
        assert b.count == 1000
