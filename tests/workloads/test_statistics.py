"""Statistical tests for the workload generators (scipy goodness-of-fit).

The error-rate tables are only meaningful if the synthetic workloads
actually have the distributions the paper describes; these tests check
distributional shape with Kolmogorov-Smirnov / chi-squared machinery
rather than spot moments.
"""

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.workloads import (
    NormalGenerator,
    UniformGenerator,
    ZipfGenerator,
)


class TestUniformGoodnessOfFit:
    def test_ks_against_uniform(self):
        # Duplicates perturb the empirical CDF, so test the distinct base.
        data = UniformGenerator(
            lo=0.0, hi=1.0, duplicate_fraction=0.0
        ).generate(50_000, seed=11)
        stat, pvalue = scipy_stats.kstest(data, "uniform")
        assert pvalue > 0.01

    def test_duplicates_do_not_shift_the_distribution(self):
        plain = UniformGenerator(lo=0.0, hi=1.0, duplicate_fraction=0.0)
        duped = UniformGenerator(lo=0.0, hi=1.0, duplicate_fraction=0.1)
        a = plain.generate(50_000, seed=3)
        b = duped.generate(50_000, seed=3)
        stat, pvalue = scipy_stats.ks_2samp(a, b)
        assert pvalue > 0.01


class TestNormalGoodnessOfFit:
    def test_ks_against_normal(self):
        data = NormalGenerator(
            mean=2.0, std=3.0, duplicate_fraction=0.0
        ).generate(50_000, seed=5)
        stat, pvalue = scipy_stats.kstest(data, "norm", args=(2.0, 3.0))
        assert pvalue > 0.01


class TestZipfShape:
    def test_duplicate_frequencies_follow_zipf_weights(self):
        """The duplicated draws must be Zipf-weighted: chi-squared against
        the theoretical frequencies of the most popular ranks."""
        n = 200_000
        gen = ZipfGenerator(parameter=0.2, duplicate_fraction=0.5)
        data = gen.generate(n, seed=9)
        values, counts = np.unique(data, return_counts=True)
        dup_counts = np.sort(counts[counts > 1] - 1)[::-1]
        # Theoretical: n_dup draws over k ranks with p_i ~ i^-(0.8).
        k = n - int(n * 0.5)
        ranks = np.arange(1, k + 1, dtype=np.float64)
        weights = ranks ** -(1.0 - 0.2)
        weights /= weights.sum()
        expected_top = weights[: dup_counts.size][::-1].cumsum()[-1] * (n - k)
        # Sanity: the top duplicated values absorb about the expected mass.
        assert 0.5 * expected_top < dup_counts.sum() <= n - k

    def test_value_mass_concentrates_low(self):
        """Value-space skew: the lower half-range holds most of the keys
        under heavy skew (~0.9 at parameter 0.2 vs 0.5 when uniform)."""
        data = ZipfGenerator(parameter=0.2, lo=0.0, hi=1.0).generate(
            100_000, seed=13
        )
        low_half_mass = np.count_nonzero(data <= 0.5) / data.size
        assert low_half_mass > 0.85

    def test_parameter_one_spreads_mass(self):
        data = ZipfGenerator(parameter=1.0, lo=0.0, hi=1.0).generate(
            100_000, seed=13
        )
        low_half_mass = np.count_nonzero(data <= 0.5) / data.size
        assert 0.4 < low_half_mass < 0.6

    def test_quantile_structure_independent_of_seed(self):
        gen = ZipfGenerator(parameter=0.86)
        a = np.quantile(gen.generate(50_000, seed=1), [0.1, 0.5, 0.9])
        b = np.quantile(gen.generate(50_000, seed=2), [0.1, 0.5, 0.9])
        np.testing.assert_allclose(a, b, rtol=0.1)
