"""Tier-1 gate: the library must satisfy its own static discipline.

Any new full sort, second pass, wall-clock read, unseeded RNG, unmatched
SPMD send or foreign raise in ``src/repro`` fails this test — which is
the point: the paper's guarantees are properties of the *source*, and CI
enforces them mechanically from here on.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths, render_text

SRC = Path(repro.__file__).parent


def test_repro_package_is_lint_clean():
    result = lint_paths([SRC])
    assert result.findings == [], "\n" + render_text(result)


def test_self_lint_covers_the_whole_package():
    result = lint_paths([SRC])
    # The package has dozens of modules; a collapse of this number means
    # the walker broke, not that the code shrank.
    assert result.files_checked >= 60


def test_suppressions_are_rare_and_justified():
    # Every suppression in the tree is a reviewed escape hatch: bounded
    # base-case sorts in the selection routines, the sanctioned
    # broad-except guards (wire-layer 500 guard, shard worker loop), the
    # execution backends' worker isolation boundaries — the one place a
    # catch MUST be total, because every worker failure has to become a
    # typed ParallelError rather than a hang or a bare traceback — the
    # shared-memory cleanup guards in ``_pack``/``_unpack``, whose
    # ``except BaseException: release; raise`` is exactly the shape
    # OPQ251 demands (a narrower catch would strand a named segment on
    # KeyboardInterrupt) — the binary server's startup isolation boundary
    # (``service/aio.py``: a bind failure on the server thread must be
    # carried back to ``start()`` on the caller's thread, whatever it is)
    # — the sample-merge argsort, which sorts already-selected
    # samples, not the run — and the multiselect kernel's dense-rank
    # sort, which sorts ONE in-memory run during the sample phase (the
    # measured-faster alternative to multi-pivot introselect), never the
    # dataset.  This ceiling forces a conversation before anyone
    # sprinkles new ones.
    result = lint_paths([SRC])
    assert result.suppressed <= 19


def test_repro_package_is_deep_lint_clean():
    """The flow/thread families hold project-wide: no unguarded
    cross-role writes, no double-consumed streams, no stale suppressions
    anywhere in ``src/repro``."""
    result = lint_paths([SRC], deep=True)
    assert result.findings == [], "\n" + render_text(result)
