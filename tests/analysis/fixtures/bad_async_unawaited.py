"""Known-bad: coroutine calls whose objects are discarded unawaited.

Calling a coroutine function only builds the coroutine object; as a bare
statement it is dropped on the floor and the body never runs — the
classic silent no-op asyncio bug.
"""


class Notifier:
    async def publish(self, event: str) -> None:
        return None

    async def run(self, events) -> None:
        for event in events:
            # BAD: builds a coroutine object and discards it.
            self.publish(event)


async def flush(sink) -> None:
    return None


def shutdown(sink) -> None:
    # BAD: same bug from synchronous code; nothing ever awaits it.
    flush(sink)
