"""Known-bad: builtin raises and a bare except in library code."""


def load(path):
    try:
        return open(path).read()
    except:
        raise ValueError("bad file")


def check(n):
    if n <= 0:
        raise Exception("n must be positive")
