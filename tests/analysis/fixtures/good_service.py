"""Known-good fixture: bounded queues, locked snapshot swaps."""

import collections
import queue
import threading


class DisciplinedService:
    def __init__(self, capacity):
        self._queue = queue.Queue(maxsize=capacity)
        self._recent = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._snapshot = None

    def run_epoch(self, merged):
        with self._lock:
            self._snapshot = merged

    def adopt(self, merged, ready):
        with self._lock:
            if ready:
                self._merged = merged

    def current(self):
        return self._snapshot
