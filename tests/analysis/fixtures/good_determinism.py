"""Known-good: seeded generators, monotonic timer, rank comparisons."""

import time

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def pivot_sample(values, size, rng):
    t0 = time.perf_counter()
    sample = rng.choice(values, size=size)
    return sample, time.perf_counter() - t0


def is_median_rank(rank, n):
    return rank == n // 2
