"""Known-bad: whole-dataset materialisation in a one-pass code path."""

import numpy as np


def summarize_in_memory(dataset, runs):
    everything = dataset.read_all()
    collected = np.concatenate(runs)
    as_list = list(runs)
    return everything, collected, as_list
