"""Known-good: concrete handlers, plus one justified last-resort guard."""

from repro.errors import DataError


def parse(text):
    try:
        return float(text)
    except ValueError:
        return None


def load(reader):
    try:
        return reader.next_chunk()
    except (OSError, DataError):
        return None


def last_resort(fn):
    try:
        return fn()
    except Exception:  # opaq: ignore[exception-broad-except] top-level guard must not leak
        return None
