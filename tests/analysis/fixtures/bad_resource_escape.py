"""OPQ253 shapes: ownership leaves the acquiring function with no
``# opaq: transfer[name]`` annotation documenting the handoff."""

_REGISTRY = {}


def stash(path):
    handle = open(path, "rb")
    _REGISTRY[path] = handle  # stored: the registry owns it now — says who?


def hand_back(path):
    handle = open(path, "rb")
    return handle  # returned: the caller owns it now — undocumented
