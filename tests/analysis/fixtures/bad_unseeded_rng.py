"""Known-bad: hidden global and unseeded RNGs in a deterministic layer."""

import random

import numpy as np


def pivot_sample(values, size):
    rng = np.random.default_rng()
    jitter = random.random()
    np.random.shuffle(values)
    return rng.choice(values, size=size), jitter
