"""Regression fixture: the first real finding opaqlint caught.

This is the exact ``time.time()`` timing pattern that used to live in
``repro/experiments/report.py:146-148`` (now ``time.perf_counter()``).
Kept verbatim so the determinism-wall-clock rule keeps firing on it.
"""

import time


def render_all(experiments, out):
    for name, fn in experiments:
        t0 = time.time()
        result = fn()
        elapsed = time.time() - t0
        print(name, result, f"({elapsed:.1f}s)", file=out)
