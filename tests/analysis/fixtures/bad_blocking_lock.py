"""OPQ752 shapes: an unbounded blocking call with a lock provably held —
directly, and through a callee whose summary reaches one."""

import queue
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue(maxsize=1024)

    def drain_directly(self):
        with self._lock:
            return self._queue.get()  # blocks forever with the lock held

    def _pull(self):
        return self._queue.get()

    def drain_through_helper(self):
        with self._lock:
            return self._pull()  # the callee's summary carries the block
