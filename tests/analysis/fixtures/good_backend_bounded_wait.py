"""Known-good: every blocking primitive is bounded; lookalikes stay quiet."""


def collect(outcome_queue, barrier, worker, lock, labels, options):
    acquired = lock.acquire(timeout=5.0)
    if not acquired:
        return None
    barrier.wait(timeout=5.0)
    outcome = outcome_queue.get(timeout=5.0)
    worker.join(5.0)
    # Same attribute names, but these never block: positional arguments
    # mean dict.get / str.join / a bounded join, not a blocking primitive.
    label = ", ".join(labels)
    return outcome, options.get("mode", label)


async def collect_async(outcome_queue, event):
    import asyncio

    # The asyncio spelling of a bounded wait: wait_for cancels the inner
    # awaitable at the deadline, so the primitive needs no timeout= of
    # its own.
    outcome = await asyncio.wait_for(outcome_queue.get(), timeout=5.0)
    await asyncio.wait_for(event.wait(), 5.0)
    return outcome
