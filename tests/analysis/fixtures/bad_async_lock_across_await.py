"""Known-bad: a ``threading.Lock`` held across suspension points.

While the coroutine is parked at the ``await``, the loop runs arbitrary
other tasks — any of them (or any real thread) touching the lock blocks
for an unbounded time.  ``asyncio.Lock`` under ``async with`` is the
correct spelling and is exempt (see the good fixture).
"""

import asyncio
import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict = {}

    async def refresh(self, key: str):
        with self._lock:
            # BAD: the lock is pinned while _fetch suspends.
            value = await self._fetch(key)
            self._entries[key] = value
        return value

    async def drain(self, source) -> None:
        with self._lock:
            # BAD: every iteration suspends with the lock held.
            async for item in source:
                self._entries[item] = item

    async def _fetch(self, key: str):
        await asyncio.sleep(0)
        return key
