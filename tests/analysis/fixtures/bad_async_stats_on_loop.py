"""Known-bad: a coroutine calls blocking synchronous code inline.

The first shape is the real finding OPQ771 surfaced in
``service/aio.py``: the STATS opcode answered on the event loop through
a callee that folds registry shards under their locks (and may touch
spill files).  Pinned here exactly as found, pre-fix.
"""

import asyncio
import threading
import time


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._folds = 0

    def stats(self) -> dict:
        with self._lock:
            return {"folds": self._folds}


class Server:
    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self.request_timeout = 5.0

    async def _blocking(self, fn):
        loop = asyncio.get_running_loop()
        return await asyncio.wait_for(
            loop.run_in_executor(None, fn), timeout=self.request_timeout
        )

    async def handle_stats(self) -> dict:
        # BAD: folds every shard under its lock, inline on the loop.
        return self.registry.stats()

    async def handle_backoff(self) -> None:
        # BAD: parks the loop (and every connection) for the duration.
        time.sleep(0.05)

    async def handle_dump(self, path: str) -> int:
        # BAD: synchronous file I/O on the loop.
        with open(path, "w") as sink:
            return sink.write("stats")
