"""OPQ252 shapes: the release exists but does not post-dominate the
acquisition, or never happens at all."""


def released_on_one_branch(path, verbose):
    handle = open(path, "rb")
    data = handle.read()
    if verbose:
        handle.close()  # the else path reaches the exit with it live
    return data


def never_released(path):
    handle = open(path, "rb")
    return handle.read()
