"""Known-good: the post-fix ``service/aio.py`` shape.

Every blocking callee crosses the ``_blocking`` offload boundary
(``run_in_executor`` under a ``wait_for`` deadline), loop-side state is
guarded by an ``asyncio.Lock`` — which may correctly be held across a
suspension — and thread-shared counters publish under a threading lock.
"""

import asyncio
import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._folds = 0

    def fold(self) -> None:
        with self._lock:
            self._folds += 1

    def stats(self) -> dict:
        with self._lock:
            return {"folds": self._folds}


class Server:
    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self.request_timeout = 5.0
        self._reply_lock = asyncio.Lock()
        self._replies = 0

    async def _blocking(self, fn):
        loop = asyncio.get_running_loop()
        return await asyncio.wait_for(
            loop.run_in_executor(None, fn), timeout=self.request_timeout
        )

    async def handle_stats(self) -> dict:
        stats = await self._blocking(self.registry.stats)
        async with self._reply_lock:
            # An asyncio lock across a suspension is ordinary usage.
            self._replies += 1
            await asyncio.sleep(0)
        return stats

    async def handle_fold(self) -> None:
        await self._blocking(self.registry.fold)
