"""Known-bad: state written by both the event-loop and thread roles.

``_latest`` is assigned by the polling thread and by a coroutine with no
common lock and no loop-safe handoff — the loop can read a torn update.
"""

import threading


class Collector:
    def __init__(self) -> None:
        self._thread = threading.Thread(target=self._drain)
        self._latest = None
        self._total = 0

    def _drain(self) -> None:
        while True:
            # Thread-role write.
            self._latest = self._poll()
            self._total += 1

    def _poll(self):
        return object()

    async def report(self) -> dict:
        # BAD: event-loop-role write to the same field, no guard on
        # either side.
        self._latest = None
        return {"total": self._total}
