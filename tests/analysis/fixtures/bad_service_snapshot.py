"""Known-bad fixture: snapshot swaps outside the swap lock."""


class RacySnapshotter:
    def __init__(self, lock):
        self._lock = lock
        self._snapshot = None  # allowed: not shared during construction

    def run_epoch(self, merged):
        self._snapshot = merged  # unlocked swap: readers may see a torn epoch

    def adopt(self, merged, ready):
        if ready:
            self._merged = merged  # unlocked, even though behind a branch
