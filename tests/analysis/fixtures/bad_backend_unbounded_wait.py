"""Known-bad: unbounded blocking calls in a real-backend collect loop."""


def collect(outcome_queue, barrier, worker, lock):
    lock.acquire()
    barrier.wait()
    outcome = outcome_queue.get()
    worker.join()
    return outcome
