"""Known-bad: unbounded blocking calls in a real-backend collect loop."""


def collect(outcome_queue, barrier, worker, lock):
    lock.acquire()
    barrier.wait()
    outcome = outcome_queue.get()
    worker.join()
    return outcome


async def collect_async(outcome_queue):
    # Not wrapped in asyncio.wait_for: the thread-queue get() hangs the
    # whole event loop forever on a dead peer.
    return outcome_queue.get()
