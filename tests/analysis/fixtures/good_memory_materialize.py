"""Known-good: one run in memory at a time, only samples retained."""

import numpy as np


def summarize_streaming(runs):
    sample_lists = []
    for run in runs:
        stride = max(1, run.size // 10)
        sample_lists.append(np.partition(run, run.size - 1)[::stride])
    return sample_lists
