"""Known-bad: a consumed stream re-enters a consuming call.

``merge_runs`` iterates its parameter; passing the same reader in twice
(or iterating and then passing) hands an exhausted iterator across the
call edge — the interprocedural half of the one-pass discipline.
"""

from repro.storage import RunReader


def merge_runs(runs):
    merged = None
    for run in runs:
        merged = run
    return merged


def summarize_twice(source):
    reader = RunReader(source, run_size=4096)
    first = merge_runs(reader)
    second = merge_runs(reader)  # reader is already exhausted
    return first, second


def count_then_merge(source):
    reader = RunReader(source, run_size=4096)
    n = 0
    for run in reader:
        n += len(run)
    return n, merge_runs(reader)  # consumed by the loop above
