"""Known-bad: a RunReader consumed twice with no declared pass budget."""

from repro.core import build_summary
from repro.storage import RunReader


def summarize_twice(dataset, config):
    reader = RunReader(dataset, run_size=config.run_size)
    summary = build_summary(reader, config)
    again = build_summary(reader, config)
    return summary, again
