"""Known-bad: the same single-pass stream is directly iterated twice.

The second function is the case the syntactic OPQ102 rule cannot see:
one ``for`` statement, textually a single consumption, re-executed by an
enclosing ``while`` — the flow-sensitive rule finds the fact through the
outer loop's back edge.
"""

from repro.storage import RunReader


def two_sequential_loops(source, run_size):
    reader = RunReader(source, run_size=run_size)
    total = 0
    for run in reader:
        total += len(run)
    for run in reader:  # second pass: the stream is exhausted
        total += len(run)
    return total


def loop_inside_while(source, run_size, needs_more):
    reader = RunReader(source, run_size=run_size)
    merged = None
    while needs_more(merged):
        for run in reader:  # re-entered on every while iteration
            merged = run
    return merged
