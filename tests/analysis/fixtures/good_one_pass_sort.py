"""Known-good: selection-based sampling, plus one justified suppression."""

import numpy as np


def sample_run_by_selection(run, ranks):
    parted = np.partition(run, ranks)
    return parted[ranks]


def tiny_base_case(values):
    # Bounded by a constant, not run-sized: the allowed escape hatch.
    return float(np.sort(values)[values.size // 2])  # opaq: ignore[one-pass-sort]
