"""Known-good: the repro.errors taxonomy, concrete except types."""

from repro.errors import ConfigError, DataError


def load(path):
    try:
        return open(path).read()
    except OSError as exc:
        raise DataError(f"cannot read {path}") from exc


def check(n):
    if n <= 0:
        raise ConfigError("n must be positive")


class Interface:
    def run(self):
        raise NotImplementedError
