"""Known-good: mirrored sends, consistent order, distinct endpoints."""


def exchange_step(machine, rank, partner, keys):
    if rank < partner:
        machine.send(rank, partner, keys, "low-to-high")
        machine.send(partner, rank, keys, "high-to-low")
    else:
        machine.send(partner, rank, keys, "low-to-high")
        machine.send(rank, partner, keys, "high-to-low")
    return machine


def compare_split(machine, i, j, block):
    machine.exchange(i, j, block.size, "merge")
    return block
