"""Known-bad: full sorts where the sample phase must use selection."""

import numpy as np


def sample_run_by_sort(run, ranks):
    ordered = np.sort(run)
    return ordered[ranks]


def sample_run_by_builtin(run, ranks):
    ordered = sorted(run)
    return [ordered[r] for r in ranks]


def sample_run_in_place(run, ranks):
    run.sort()
    return run[ranks]
