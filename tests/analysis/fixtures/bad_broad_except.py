"""Known-bad: except Exception/BaseException is as broad as a bare except."""


def load(reader):
    try:
        return reader.next_chunk()
    except Exception:  # swallows SinglePassViolation with everything else
        return None


def guard(fn):
    try:
        fn()
    except (ValueError, BaseException):  # tuple form is just as broad
        pass
