"""Known-bad fixture: unbounded queues in a serving code path."""

import collections
import queue


def build_ingest_path():
    pending = queue.Queue()  # unbounded: overload becomes memory growth
    overflow = queue.Queue(0)  # maxsize=0 means unbounded too
    firehose = queue.SimpleQueue()  # cannot be bounded at all
    history = collections.deque()  # no maxlen: grows forever
    return pending, overflow, firehose, history
