"""The fixed shm pack/unpack shape: release post-dominates acquisition
on every path, and the descriptor hand-off is a documented transfer."""

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class ShmArray:
    name: str
    shape: tuple
    dtype: str


def pack(obj):
    segment = shared_memory.SharedMemory(create=True, size=max(1, obj.nbytes))
    try:
        view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=segment.buf)
        view[...] = obj
        handle = ShmArray(  # opaq: transfer[segment] consumer unlinks
            segment.name, tuple(obj.shape), obj.dtype.str
        )
    except BaseException:  # opaq: ignore[exception-broad-except] re-raised: segment cleanup must cover every failure
        segment.close()
        segment.unlink()
        raise
    segment.close()
    return handle


def unpack(handle):
    segment = shared_memory.SharedMemory(name=handle.name)
    try:
        arr = np.ndarray(
            handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
        ).copy()
    except BaseException:  # opaq: ignore[exception-broad-except] re-raised: segment cleanup must cover every failure
        segment.close()
        segment.unlink()
        raise
    segment.close()
    segment.unlink()
    return arr
