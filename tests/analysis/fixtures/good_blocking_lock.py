"""Blocking and locking that compose: the wait is bounded, or the lock
is released before the wait."""

import queue
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue(maxsize=1024)
        self._draining = False

    def drain_bounded(self):
        with self._lock:
            return self._queue.get(timeout=1.0)

    def drain_outside(self):
        with self._lock:
            self._draining = True
        return self._queue.get(timeout=1.0)
