"""Known-bad: an SPMD role branch whose send has no mirrored partner.

The low-rank branch sends ``(rank, partner)``; its sibling should complete
the transfer with the mirrored ``(partner, rank)`` but addresses a
different pair entirely, so the partner side of the transfer never
happens — on a blocking machine this deadlocks, on the simulated machine
the clocks silently stop being meaningful.
"""


def merge_step(machine, rank, partner, keys):
    if rank < partner:
        machine.send(rank, partner, keys, "merge")
    else:
        machine.send(partner + 1, rank, keys, "merge")
