"""Known-good: the same service shape with the documented lock discipline.

Every write to the snapshotter's published reference happens under the
swap lock, the service counters take a state lock around their
read-modify-writes, and reads stay lock-free — the invariants the thread
family must *derive*, not just pattern-match.
"""

import threading
from http.server import BaseHTTPRequestHandler


class Snapshotter:
    def __init__(self):
        self._lock = threading.Lock()
        self._snapshot = None
        self._epoch = 0

    def run_epoch(self, summary):
        with self._lock:
            self._snapshot = summary
            self._epoch += 1

    def adopt(self, summary):
        with self._lock:
            self._snapshot = summary

    @property
    def current(self):
        return self._snapshot  # lock-free read: fine by design


class Service:
    def __init__(self):
        self._snapshotter = Snapshotter()
        self._state_lock = threading.Lock()
        self._accepted = 0
        self._pending = []

    def ingest(self, batch):
        with self._state_lock:
            self._accepted += len(batch)
            self._pending.append(batch)
        self._snapshotter.adopt(batch)

    def drain(self):
        with self._state_lock:
            drained = list(self._pending)
            self._pending = []
        return drained

    def snapshot(self, summary):
        self._snapshotter.run_epoch(summary)


class Handler(BaseHTTPRequestHandler):
    service = Service()

    def do_POST(self):
        self.service.ingest([1.0, 2.0])
