"""Known-good: the second pass is requested explicitly (paper section 4)."""

from repro.core import build_summary
from repro.core.exact import refine_exact
from repro.storage import RunReader


def exact_two_pass(dataset, config, bounds):
    reader = RunReader(dataset, run_size=config.run_size, max_passes=2)
    summary = build_summary(reader.runs(), config)
    values = refine_exact(reader.runs(), bounds)
    return summary, values
