"""Known-bad: mirrored sends issued head-to-head (order deadlock)."""


def exchange_step(machine, rank, partner, keys):
    if rank < partner:
        machine.send(rank, partner, keys, "low-to-high")
        machine.send(partner, rank, keys, "high-to-low")
    else:
        machine.send(rank, partner, keys, "low-to-high")
        machine.send(partner, rank, keys, "high-to-low")
    return machine
