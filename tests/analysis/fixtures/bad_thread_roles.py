"""Known-bad: shared fields written from the HTTP-handler role unguarded.

``Snapshotter.run_epoch`` teaches the analyzer that ``self._lock`` guards
``_snapshot``; ``adopt`` then writes the same field without it, and the
role inference proves ``adopt`` is reachable from a thread-per-request
handler (``do_POST`` -> ``Service.ingest`` -> ``adopt``).  The counter
``Service._accepted`` is a read-modify-write from that concurrent role
with no lock at all.
"""

import threading
from http.server import BaseHTTPRequestHandler


class Snapshotter:
    def __init__(self):
        self._lock = threading.Lock()
        self._snapshot = None
        self._epoch = 0

    def run_epoch(self, summary):
        with self._lock:
            self._snapshot = summary
            self._epoch += 1

    def adopt(self, summary):
        self._snapshot = summary  # unguarded write to a guarded field

    @property
    def current(self):
        return self._snapshot  # lock-free read: fine by design


class Service:
    def __init__(self):
        self._snapshotter = Snapshotter()
        self._accepted = 0

    def ingest(self, batch):
        self._accepted += len(batch)  # unlocked RMW from a handler thread
        self._snapshotter.adopt(batch)

    def snapshot(self, summary):
        self._snapshotter.run_epoch(summary)


class Handler(BaseHTTPRequestHandler):
    service = Service()

    def do_POST(self):
        self.service.ingest([1.0, 2.0])
