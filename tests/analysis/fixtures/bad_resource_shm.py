"""Regression fixture: the process backend's shm pack/unpack *before*
the lifetime fix.

Both functions release their segment only on the straight-line path: a
failure between acquire and release (the copy raising, the dtype being
bogus) unwinds out of the frame with a *named* segment still registered
— it outlives the process.  The descriptor hand-off in ``pack`` also
ships the segment's name (the unlink capability) with no documented
ownership transfer.
"""

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class ShmArray:
    name: str
    shape: tuple
    dtype: str


def pack(obj):
    segment = shared_memory.SharedMemory(create=True, size=max(1, obj.nbytes))
    view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=segment.buf)
    view[...] = obj  # a failing copy strands the named segment
    handle = ShmArray(segment.name, tuple(obj.shape), obj.dtype.str)
    segment.close()
    return handle


def unpack(handle):
    segment = shared_memory.SharedMemory(name=handle.name)
    arr = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
    ).copy()  # a failing copy leaks the attachment
    segment.close()
    segment.unlink()
    return arr
