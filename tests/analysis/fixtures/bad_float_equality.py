"""Known-bad: exact equality against float literals."""


def is_median(phi):
    return phi == 0.5


def not_tail(phi):
    return phi != 0.99
