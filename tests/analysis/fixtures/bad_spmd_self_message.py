"""Known-bad: a processor messaging itself (blocking deadlock)."""


def broadcast(machine, rank, keys):
    machine.send(rank, rank, keys, "bcast")
    machine.exchange(rank, rank, keys, "swap")
