"""OPQ751 shapes: the same two locks acquired in opposite orders —
directly, and through a callee whose summary carries the acquisition."""

import threading

_ingest_lock = threading.Lock()
_publish_lock = threading.Lock()


def publish_under_ingest():
    with _ingest_lock:
        with _publish_lock:
            pass


def ingest_under_publish():
    with _publish_lock:
        _take_ingest()  # the cycle closes through the call edge


def _take_ingest():
    with _ingest_lock:
        pass
