"""Nested locking with one global order: every path that holds both
locks acquires ingest before publish, so the order graph is acyclic."""

import threading

_ingest_lock = threading.Lock()
_publish_lock = threading.Lock()


def publish_under_ingest():
    with _ingest_lock:
        with _publish_lock:
            pass


def also_in_order():
    with _ingest_lock:
        _take_publish()


def _take_publish():
    with _publish_lock:
        pass
