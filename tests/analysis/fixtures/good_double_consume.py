"""Known-good: single-pass consumption patterns the flow rules accept.

``branch_but_one_pass`` is the shape the flow-sensitive family exists
for: two textual consumptions on *exclusive* paths are still one pass.
``handoff_to_helper`` shows the interprocedural direction: passing the
stream to a resolved non-consuming helper does not spend the pass (the
syntactic OPQ102 over-counts call-passes, hence its one justified
suppression — the deep OPQ802 rule proves the handoff safe).
"""

from repro.storage import RunReader


def single_pass(source):
    reader = RunReader(source, run_size=4096)
    total = 0
    for run in reader:
        total += len(run)
    return total


def declared_multi_pass(source):
    reader = RunReader(source, run_size=4096, max_passes=2)
    largest = 0
    for run in reader:
        largest = len(run) if len(run) > largest else largest
    for run in reader:  # second pass covered by the declared budget
        largest = len(run) if len(run) > largest else largest
    return largest


def branch_but_one_pass(source, fast):
    reader = RunReader(source, run_size=4096)
    if fast:
        return sum(len(run) for run in reader)
    total = 0
    for run in reader:
        total += len(run)
    return total


def handoff_to_helper(source):
    reader = RunReader(source, run_size=4096)
    announce(reader)
    return consume(reader)  # opaq: ignore[one-pass-reread] announce() only logs; OPQ802 checks the callee bodies


def announce(reader):
    print("starting pass over", reader)


def consume(runs):
    total = 0
    for run in runs:
        total += len(run)
    return total
