"""The OPQ75x family must *derive* the service layer's deadlock freedom.

``docs/service.md`` documents each lock's role; this proves the locks
also *compose*: the global lock-order graph over the real service and
parallel sources is acyclic, so no interleaving of worker, snapshotter
and handler threads can deadlock on lock order.
"""

import textwrap
from pathlib import Path

import repro
from repro.analysis import build_project
from repro.analysis.framework import ModuleContext
from repro.analysis.rules_deadlock import build_lock_order_graph
from repro.analysis.runner import iter_python_files, parse_module

SERVICE = Path(repro.__file__).parent / "service"
PARALLEL = Path(repro.__file__).parent / "parallel"


def graph_over(*dirs):
    modules = [
        ModuleContext.from_path(p) for p in iter_python_files(list(dirs))
    ]
    return build_lock_order_graph(build_project(modules))


class TestDerivedDeadlockFreedom:
    def test_service_lock_order_graph_is_acyclic(self):
        assert graph_over(SERVICE).cycles() == []

    def test_service_and_parallel_compose_acyclically(self):
        """The graph over both layers together — the configuration the
        running service actually executes — has no cycle either."""
        assert graph_over(SERVICE, PARALLEL).cycles() == []


class TestGraphConstruction:
    def test_nested_acquisition_and_call_edge_close_a_cycle(self):
        ctx = parse_module(
            textwrap.dedent(
                """
                import threading

                _a_lock = threading.Lock()
                _b_lock = threading.Lock()

                def forward():
                    with _a_lock:
                        with _b_lock:
                            pass

                def backward():
                    with _b_lock:
                        _grab_a()

                def _grab_a():
                    with _a_lock:
                        pass
                """
            )
        )
        graph = build_lock_order_graph(build_project([ctx]))
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 2
        # Both witness kinds appear: one direct, one through the call.
        details = {
            site.detail.split(" ")[0]
            for sites in graph.edges.values()
            for site in sites
        }
        assert details == {"acquired", "via"}

    def test_reentrant_acquisition_is_not_an_order_edge(self):
        ctx = parse_module(
            textwrap.dedent(
                """
                import threading

                _one_lock = threading.RLock()

                def reenter():
                    with _one_lock:
                        with _one_lock:
                            pass
                """
            )
        )
        graph = build_lock_order_graph(build_project([ctx]))
        assert graph.edges == {}

    def test_same_cycle_reports_once_from_both_entry_points(self):
        ctx = parse_module(
            textwrap.dedent(
                """
                import threading

                _a_lock = threading.Lock()
                _b_lock = threading.Lock()

                def ab():
                    with _a_lock:
                        with _b_lock:
                            pass

                def ba():
                    with _b_lock:
                        with _a_lock:
                            pass
                """
            )
        )
        graph = build_lock_order_graph(build_project([ctx]))
        assert len(graph.cycles()) == 1
