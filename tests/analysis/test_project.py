"""Tests for the cross-module project index."""

from pathlib import Path

import repro
from repro.analysis import build_project
from repro.analysis.runner import iter_python_files, parse_module
from repro.analysis.framework import ModuleContext

SERVICE = Path(repro.__file__).parent / "service"


def service_project():
    modules = [ModuleContext.from_path(p) for p in iter_python_files([SERVICE])]
    return build_project(modules)


class TestIndexShape:
    def test_indexes_service_classes_and_methods(self):
        project = service_project()
        names = {cls.name for cls in project.classes}
        assert {"QuantileService", "ShardWorker", "Snapshotter"} <= names
        worker = next(iter(project.class_named("ShardWorker")))
        assert "_loop" in worker.methods
        assert worker.methods["_loop"].qualname == "shard.py:ShardWorker._loop"

    def test_field_types_learn_constructors(self):
        project = service_project()
        worker = next(iter(project.class_named("ShardWorker")))
        # __init__ assigns self._queue = queue.Queue(...): the thread
        # rules use this to classify fields as internally synchronised.
        assert worker.field_types.get("_queue", "").endswith("Queue")

    def test_call_edges_record_callee_as_written(self):
        project = service_project()
        worker = next(iter(project.class_named("ShardWorker")))
        loop = worker.methods["_loop"]
        callees = {site.callee for site in loop.calls}
        assert "self._fold" in callees

    def test_import_graph_sees_cross_module_imports(self):
        project = service_project()
        engine_key = next(k for k in project.imports if k.endswith("engine.py"))
        assert any(
            "repro.service.shard" in mod for mod in project.imports[engine_key]
        )
        assert "ShardWorker" in project.aliases[engine_key]

    def test_methods_named_spans_modules(self):
        project = service_project()
        names = {fn.qualname for fn in project.methods_named("start")}
        assert any(q.startswith("shard.py:") for q in names)


class TestCfgMemoisation:
    def test_same_function_returns_same_graph(self):
        project = service_project()
        worker = next(iter(project.class_named("ShardWorker")))
        loop = worker.methods["_loop"]
        assert project.cfg(loop) is project.cfg(loop)


class TestFixtureModules:
    def test_parse_module_contexts_index_too(self):
        ctx = parse_module(
            "class A:\n"
            "    def __init__(self):\n"
            "        self.x = Thing()\n"
            "    def go(self):\n"
            "        self.run(1)\n"
        )
        project = build_project([ctx])
        cls = next(iter(project.class_named("A")))
        assert cls.init_fields == {"x"}
        assert cls.field_types["x"] == "Thing"
        assert {s.callee for s in cls.methods["go"].calls} == {"self.run"}
