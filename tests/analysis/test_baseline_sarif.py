"""Tests for the SARIF reporter and the adopted-findings baseline."""

import json

import pytest

from repro.analysis import lint_paths, load_baseline, render_sarif, write_baseline
from repro.analysis.baseline import BASELINE_VERSION, BaselineEntry, apply_baseline
from repro.analysis.registry import all_rules
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION
from repro.errors import ConfigError

BAD_SOURCE = "import time\n\n\ndef f() -> float:\n    return time.time()\n"


@pytest.fixture()
def bad_tree(tmp_path):
    (tmp_path / "clock.py").write_text(BAD_SOURCE, encoding="utf-8")
    return tmp_path


class TestSarifShape:
    def test_document_envelope(self, bad_tree):
        doc = json.loads(render_sarif(lint_paths([bad_tree])))
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert len(doc["runs"]) == 1

    def test_driver_lists_every_registered_rule(self, bad_tree):
        doc = json.loads(render_sarif(lint_paths([bad_tree])))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "opaqlint"
        codes = [rule["id"] for rule in driver["rules"]]
        assert codes == [rule.code for rule in all_rules()]
        # The deep families are part of the published catalogue.
        assert {"OPQ701", "OPQ801", "OPQ901"} <= set(codes)

    def test_results_point_back_into_the_rules_array(self, bad_tree):
        doc = json.loads(render_sarif(lint_paths([bad_tree])))
        run = doc["runs"][0]
        assert run["results"], "the wall-clock read must produce a finding"
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] == "error"
            assert result["message"]["text"]

    def test_locations_are_one_based(self, bad_tree):
        doc = json.loads(render_sarif(lint_paths([bad_tree])))
        region = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_clean_run_has_empty_results(self, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n", encoding="utf-8")
        doc = json.loads(render_sarif(lint_paths([tmp_path])))
        assert doc["runs"][0]["results"] == []


class TestBaselineWorkflow:
    def test_write_then_apply_silences_adopted_findings(self, bad_tree, tmp_path):
        first = lint_paths([bad_tree])
        assert first.findings
        baseline = tmp_path / "baseline.json"
        count = write_baseline(baseline, first.findings)
        assert count == len(first.findings)

        second = lint_paths([bad_tree], baseline=baseline)
        assert second.findings == []
        assert second.baselined == count

    def test_stale_entry_is_an_error(self, bad_tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        first = lint_paths([bad_tree])
        write_baseline(baseline, first.findings)

        # The debt gets paid: the offending file is fixed...
        (bad_tree / "clock.py").write_text("X = 1\n", encoding="utf-8")
        # ...but the baseline entry lingers.  That is OPQ903.
        result = lint_paths([bad_tree], baseline=baseline)
        stale = [f for f in result.findings if f.code == "OPQ903"]
        assert len(stale) == len(first.findings)
        assert all(f.path == str(baseline) for f in stale)

    def test_matching_is_a_multiset(self):
        entry = BaselineEntry(rule_id="r", path="p.py", message="m")
        finding_like = type(
            "F", (), {"rule_id": "r", "path": "p.py", "message": "m"}
        )
        remaining, baselined, stale = apply_baseline(
            [finding_like(), finding_like()], [entry]
        )
        # One entry covers one finding; the twin survives.
        assert baselined == 1
        assert len(remaining) == 1
        assert stale == []

    def test_missing_baseline_file_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_baseline_is_a_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_baseline(bad)

        wrong_version = tmp_path / "versioned.json"
        wrong_version.write_text(
            json.dumps({"version": BASELINE_VERSION + 1, "entries": []}),
            encoding="utf-8",
        )
        with pytest.raises(ConfigError):
            load_baseline(wrong_version)

        missing_key = tmp_path / "partial.json"
        missing_key.write_text(
            json.dumps(
                {"version": BASELINE_VERSION, "entries": [{"rule": "OPQ301"}]}
            ),
            encoding="utf-8",
        )
        with pytest.raises(ConfigError):
            load_baseline(missing_key)

    def test_roundtrip_through_disk(self, bad_tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        findings = lint_paths([bad_tree]).findings
        write_baseline(baseline, findings)
        entries = load_baseline(baseline)
        assert [e.key() for e in entries] == sorted(
            (f.rule_id, f.path, f.message) for f in findings
        )
