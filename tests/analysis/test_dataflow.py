"""Tests for the gen/kill dataflow framework and the shared LockTracker."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    EMPTY,
    GenKill,
    LockTracker,
    dominators,
    iter_ops_with_facts,
    lock_names_of,
    run_forward,
)


def cfg_of(source: str):
    fn = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(fn)


def facts_at_assignments(source: str, analysis):
    """``{target_name: fact}`` for each ``x = ...`` statement."""
    cfg = cfg_of(source)
    out = {}
    for op, fact in iter_ops_with_facts(cfg, analysis):
        if op.kind == "stmt" and isinstance(op.node, ast.Assign):
            target = op.node.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = fact
    return out


class TestLockTracker:
    def test_lock_held_inside_with_released_after(self):
        facts = facts_at_assignments(
            """
            def f(self):
                before = 1
                with self._lock:
                    inside = 2
                after = 3
            """,
            LockTracker(),
        )
        assert facts["before"] == EMPTY
        assert facts["inside"] == {"self._lock"}
        assert facts["after"] == EMPTY

    def test_must_join_drops_lock_held_on_only_one_arm(self):
        facts = facts_at_assignments(
            """
            def f(self, flag):
                if flag:
                    with self._lock:
                        inside = 1
                joined = 2
            """,
            LockTracker(),
        )
        assert facts["inside"] == {"self._lock"}
        assert facts["joined"] == EMPTY

    def test_exception_edge_drops_the_lock_in_the_handler(self):
        # The raise path bypasses with-exit, but an unwound `with` has
        # released the lock: the handler's must-set is empty.
        facts = facts_at_assignments(
            """
            def f(self):
                try:
                    with self._lock:
                        inside = risky()
                except ValueError:
                    handler = 1
                done = 2
            """,
            LockTracker(),
        )
        assert facts["inside"] == {"self._lock"}
        assert facts["handler"] == EMPTY
        assert facts["done"] == EMPTY

    def test_nested_locks_accumulate(self):
        facts = facts_at_assignments(
            """
            def f(self):
                with self._swap_lock:
                    with self._state_lock:
                        both = 1
                    outer_only = 2
            """,
            LockTracker(),
        )
        assert facts["both"] == {"self._swap_lock", "self._state_lock"}
        assert facts["outer_only"] == {"self._swap_lock"}

    def test_lock_names_of_matches_lock_like_names_only(self):
        stmt = ast.parse(
            "with self._lock, open(p) as fh, swap_lock:\n    pass\n"
        ).body[0]
        assert lock_names_of(stmt) == ["self._lock", "swap_lock"]

    def test_lock_names_of_strips_trailing_acquire(self):
        # `with self._swap_lock.acquire():` tracks the same name as the
        # plain `with self._swap_lock:` spelling, so the must-sets of the
        # two forms agree.
        stmt = ast.parse(
            "with self._swap_lock.acquire():\n    pass\n"
        ).body[0]
        assert lock_names_of(stmt) == ["self._swap_lock"]
        plain = ast.parse("with self._swap_lock:\n    pass\n").body[0]
        assert lock_names_of(plain) == lock_names_of(stmt)


class _Taint(GenKill):
    """Toy may-analysis: names assigned from calls to taint()."""

    mode = "may"

    def gen(self, op):
        node = op.node
        if (
            op.kind == "stmt"
            and isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "taint"
        ):
            return frozenset(
                t.id for t in node.targets if isinstance(t, ast.Name)
            )
        return frozenset()


class TestMayAnalysis:
    def test_union_at_joins(self):
        facts = facts_at_assignments(
            """
            def f(flag):
                if flag:
                    a = taint()
                else:
                    b = 1
                joined = 2
            """,
            _Taint(),
        )
        assert facts["joined"] == {"a"}

    def test_loop_fact_reaches_its_own_head(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    x = taint()
            """
        )
        entry_facts = run_forward(cfg, _Taint())
        head = next(
            b
            for b in cfg.iter_blocks()
            if any(o.kind == "branch" for o in b.ops)
        )
        assert "x" in entry_facts[head.id]


class TestDominators:
    def test_loop_head_dominates_body_but_not_preheader(self):
        cfg = cfg_of(
            """
            def f(reader):
                setup()
                for run in reader:
                    work(run)
            """
        )
        doms = dominators(cfg)
        head = next(
            b
            for b in cfg.iter_blocks()
            if any(o.kind == "for-iter" for o in b.ops)
        )
        body = next(b for b in cfg.iter_blocks() if b.label == "loop-body")
        pre = next(b for b in cfg.iter_blocks() if b.label == "body")
        assert head.id in doms[body.id]
        assert head.id not in doms[pre.id]
        assert cfg.entry in doms[head.id]

    def test_inner_loop_does_not_dominate_outer_head(self):
        cfg = cfg_of(
            """
            def f(reader, n):
                while n:
                    for run in reader:
                        work(run)
            """
        )
        doms = dominators(cfg)
        inner = next(
            b
            for b in cfg.iter_blocks()
            if any(o.kind == "for-iter" for o in b.ops)
        )
        outer = next(
            b
            for b in cfg.iter_blocks()
            if any(o.kind == "branch" for o in b.ops)
        )
        assert inner.id not in doms[outer.id]
        assert outer.id in doms[inner.id]
