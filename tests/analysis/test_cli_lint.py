"""Tests for the ``opaq lint`` CLI subcommand: exit codes and formats."""

import json
from pathlib import Path

import repro
from repro.analysis import all_rules
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(repro.__file__).parent


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_seeded_violation_exits_one(self, capsys):
        rc = main(["lint", str(FIXTURES / "bad_exceptions.py")])
        assert rc == 1
        assert "OPQ501" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        rc = main(["lint", str(SRC), "--select", "no-such-rule"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/dir"]) == 2

    def test_select_can_scope_to_one_family(self, capsys):
        rc = main(
            [
                "lint",
                str(FIXTURES / "bad_exceptions.py"),
                "--select",
                "determinism-wall-clock",
            ]
        )
        assert rc == 0

    def test_ignore_can_silence_the_finding(self, capsys):
        rc = main(
            [
                "lint",
                str(FIXTURES / "bad_exceptions.py"),
                "--ignore",
                "OPQ501",
                "--ignore",
                "OPQ502",
            ]
        )
        assert rc == 0


class TestJsonFormat:
    def test_schema(self, capsys):
        rc = main(
            ["lint", str(FIXTURES / "bad_unseeded_rng.py"), "--format", "json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["count"] == 3
        assert payload["files_checked"] == 1
        assert payload["baselined"] == 0
        assert payload["suppressed_by_rule"] == {}
        for finding in payload["findings"]:
            assert finding["rule"] == "determinism-unseeded-rng"
            assert finding["code"] == "OPQ302"
            assert finding["path"].endswith("bad_unseeded_rng.py")
            assert isinstance(finding["line"], int) and finding["line"] > 0

    def test_clean_json(self, capsys):
        rc = main(["lint", str(SRC / "errors.py"), "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []


class TestListRules:
    def test_lists_every_rule_and_exits_zero(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out
