"""Fixture-based tests: every rule family fires on its known-bad snippet
and stays silent on the corresponding known-good one."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture file, rule that must fire there, expected finding count)
BAD = [
    ("bad_one_pass_sort.py", "one-pass-sort", 3),
    ("bad_one_pass_reread.py", "one-pass-reread", 1),
    ("bad_memory_materialize.py", "memory-materialize", 3),
    ("bad_wall_clock_report.py", "determinism-wall-clock", 2),
    ("bad_unseeded_rng.py", "determinism-unseeded-rng", 3),
    ("bad_float_equality.py", "determinism-float-equality", 2),
    ("bad_spmd_self_message.py", "spmd-self-message", 2),
    ("bad_spmd_unmatched_send.py", "spmd-unmatched-send", 2),
    ("bad_spmd_reordered_send.py", "spmd-reordered-send", 1),
    ("bad_backend_unbounded_wait.py", "spmd-unbounded-blocking", 5),
    ("bad_exceptions.py", "exception-foreign-raise", 2),
    ("bad_exceptions.py", "exception-bare-except", 1),
    ("bad_service_queue.py", "service-unbounded-queue", 4),
    ("bad_service_snapshot.py", "service-snapshot-lock", 2),
    ("bad_broad_except.py", "exception-broad-except", 2),
]

#: (fixture file, rule that must fire under --deep, expected finding count)
DEEP_BAD = [
    ("bad_thread_roles.py", "thread-unguarded-write", 2),
    ("bad_thread_roles.py", "thread-concurrent-rmw", 1),
    ("bad_double_consume.py", "one-pass-double-consume", 2),
    ("bad_consumed_reentry.py", "one-pass-consumed-reentry", 2),
    # The pre-fix shm pack/unpack shape (kept as a regression of the
    # real bug the OPQ25x family found in the process backend).
    ("bad_resource_shm.py", "resource-leak-exception-path", 2),
    ("bad_resource_shm.py", "resource-escape-undocumented", 1),
    ("bad_resource_release.py", "resource-release-not-postdominating", 2),
    ("bad_resource_escape.py", "resource-escape-undocumented", 2),
    ("bad_lock_order.py", "lock-order-cycle", 1),
    ("bad_blocking_lock.py", "blocking-while-holding-lock", 2),
    # The pre-fix shape of the real OPQ771 finding in service/aio.py
    # (STATS answered inline on the loop through a lock-taking callee).
    ("bad_async_stats_on_loop.py", "async-blocking-call", 3),
    ("bad_async_lock_across_await.py", "async-lock-across-await", 2),
    ("bad_async_unawaited.py", "async-unawaited-coroutine", 2),
    ("bad_async_cross_role.py", "async-cross-role-write", 2),
]

#: fixtures that must be fully clean under the whole deep rule set
DEEP_GOOD = [
    "good_thread_roles.py",
    "good_double_consume.py",
    "good_service.py",
    "good_broad_except.py",
    "good_resource_shm.py",
    "good_lock_order.py",
    "good_blocking_lock.py",
    "good_async_service.py",
]

#: (fixture file, rule that must stay silent there)
GOOD = [
    ("good_one_pass_sort.py", "one-pass-sort"),
    ("good_one_pass_reread.py", "one-pass-reread"),
    ("good_memory_materialize.py", "memory-materialize"),
    ("good_determinism.py", "determinism-wall-clock"),
    ("good_determinism.py", "determinism-unseeded-rng"),
    ("good_determinism.py", "determinism-float-equality"),
    ("good_spmd.py", "spmd-self-message"),
    ("good_spmd.py", "spmd-unmatched-send"),
    ("good_spmd.py", "spmd-reordered-send"),
    ("good_backend_bounded_wait.py", "spmd-unbounded-blocking"),
    ("good_exceptions.py", "exception-foreign-raise"),
    ("good_exceptions.py", "exception-bare-except"),
    ("good_service.py", "service-unbounded-queue"),
    ("good_service.py", "service-snapshot-lock"),
    ("good_broad_except.py", "exception-broad-except"),
]


@pytest.mark.parametrize("fixture,rule,count", BAD)
def test_rule_fires_on_known_bad(fixture, rule, count):
    result = lint_paths([FIXTURES / fixture], select=[rule])
    assert len(result.findings) == count
    assert all(f.rule_id == rule for f in result.findings)
    assert all(f.line > 0 and f.path.endswith(fixture) for f in result.findings)


@pytest.mark.parametrize("fixture,rule", GOOD)
def test_rule_silent_on_known_good(fixture, rule):
    result = lint_paths([FIXTURES / fixture], select=[rule])
    assert result.findings == []


def test_good_fixtures_are_fully_clean():
    """Good fixtures pass the *entire* rule set, not just their family."""
    for fixture, _ in GOOD:
        result = lint_paths([FIXTURES / fixture])
        assert result.findings == [], f"{fixture}: {result.findings}"


@pytest.mark.parametrize("fixture,rule,count", DEEP_BAD)
def test_deep_rule_fires_on_known_bad(fixture, rule, count):
    result = lint_paths([FIXTURES / fixture], select=[rule], deep=True)
    assert len(result.findings) == count, result.findings
    assert all(f.rule_id == rule for f in result.findings)
    assert all(f.line > 0 and f.path.endswith(fixture) for f in result.findings)


def test_deep_rules_need_deep_mode():
    # Without --deep the project families never run: the bad threading
    # fixture sails through a shallow pass.
    result = lint_paths(
        [FIXTURES / "bad_thread_roles.py"], select=["thread-unguarded-write"]
    )
    assert result.findings == []


@pytest.mark.parametrize("fixture", DEEP_GOOD)
def test_deep_good_fixtures_are_fully_clean(fixture):
    """Good fixtures pass the entire rule set *including* deep families."""
    result = lint_paths([FIXTURES / fixture], deep=True)
    assert result.findings == [], f"{fixture}: {result.findings}"


def test_suppression_is_counted():
    result = lint_paths([FIXTURES / "good_one_pass_sort.py"])
    assert result.clean
    assert result.suppressed == 1


def test_unmatched_send_names_the_missing_mirror():
    result = lint_paths(
        [FIXTURES / "bad_spmd_unmatched_send.py"], select=["spmd-unmatched-send"]
    )
    assert any("no mirrored" in f.message for f in result.findings)


def test_codes_and_ids_are_interchangeable():
    by_id = lint_paths([FIXTURES / "bad_exceptions.py"], select=["exception-foreign-raise"])
    by_code = lint_paths([FIXTURES / "bad_exceptions.py"], select=["OPQ501"])
    assert [f.line for f in by_id.findings] == [f.line for f in by_code.findings]


def test_ignore_excludes_a_family():
    result = lint_paths(
        [FIXTURES / "bad_exceptions.py"],
        ignore=["exception-foreign-raise", "exception-bare-except"],
    )
    assert result.findings == []
