"""The incremental cache's one invariant: a warm run is *byte-identical*
to a cold run — across every reporter — while re-analyzing only what a
change can actually influence."""

import json
from pathlib import Path

from repro.analysis import lint_paths, render_json, render_text
from repro.analysis.sarif import render_sarif

GOOD = '''\
import threading


class Holder:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1
'''

BAD = '''\
def leak(path):
    handle = open(path, "rb")
    return handle.read()
'''


def make_tree(root: Path) -> Path:
    """A miniature repro package: one service module, one core module."""
    pkg = root / "repro"
    (pkg / "service").mkdir(parents=True)
    (pkg / "core").mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "service" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "core" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "service" / "holder.py").write_text(GOOD, encoding="utf-8")
    (pkg / "core" / "leaky.py").write_text(BAD, encoding="utf-8")
    return pkg


def renders(result):
    return (render_text(result), render_json(result), render_sarif(result))


class TestByteIdenticalReplay:
    def test_warm_run_matches_cold_and_uncached(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        uncached = lint_paths([pkg], deep=True)
        cold = lint_paths([pkg], deep=True, cache=cache)
        warm = lint_paths([pkg], deep=True, cache=cache)
        assert renders(uncached) == renders(cold) == renders(warm)
        assert uncached.cache_stats is None
        assert cold.cache_stats.files_reused == 0
        assert warm.cache_stats.files_reused == warm.cache_stats.files_total
        assert (
            warm.cache_stats.deep_rules_reused
            == warm.cache_stats.deep_rules_total
            > 0
        )

    def test_suppression_accounting_survives_replay(self, tmp_path):
        pkg = make_tree(tmp_path)
        target = pkg / "core" / "noisy.py"
        target.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  "
            "# opaq: ignore[determinism-wall-clock] log only\n",
            encoding="utf-8",
        )
        cache = tmp_path / "cache.json"
        cold = lint_paths([pkg], deep=True, cache=cache)
        warm = lint_paths([pkg], deep=True, cache=cache)
        assert warm.suppressed == cold.suppressed > 0
        assert warm.suppressed_by_rule == cold.suppressed_by_rule
        assert renders(cold) == renders(warm)

    def test_corrupt_cache_is_a_cold_start_not_an_error(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        result = lint_paths([pkg], deep=True, cache=cache)
        assert result.cache_stats.files_reused == 0
        assert renders(result) == renders(lint_paths([pkg], deep=True))
        # ... and the run rewrote it into a usable cache.
        assert json.loads(cache.read_text(encoding="utf-8"))["files"]


class TestParallelRunner:
    """``jobs=N`` shares the cache invariant: byte-identical output."""

    def test_jobs_output_is_byte_identical_to_serial(self, tmp_path):
        pkg = make_tree(tmp_path)
        serial = lint_paths([pkg], deep=True)
        for jobs in (1, 2, 4):
            parallel = lint_paths([pkg], deep=True, jobs=jobs)
            assert renders(parallel) == renders(serial), f"jobs={jobs}"
            assert parallel.files_checked == serial.files_checked
            assert parallel.suppressed == serial.suppressed

    def test_jobs_replays_suppressions_identically(self, tmp_path):
        pkg = make_tree(tmp_path)
        (pkg / "core" / "noisy.py").write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  "
            "# opaq: ignore[determinism-wall-clock] log only\n",
            encoding="utf-8",
        )
        serial = lint_paths([pkg])
        parallel = lint_paths([pkg], jobs=2)
        assert renders(parallel) == renders(serial)
        assert parallel.suppressed == serial.suppressed > 0
        assert parallel.suppressed_by_rule == serial.suppressed_by_rule

    def test_jobs_parse_failures_match_serial(self, tmp_path):
        pkg = make_tree(tmp_path)
        (pkg / "core" / "broken.py").write_text(
            "def oops(:\n", encoding="utf-8"
        )
        serial = lint_paths([pkg], deep=True)
        parallel = lint_paths([pkg], deep=True, jobs=2)
        assert renders(parallel) == renders(serial)
        assert any(f.rule_id == "parse-error" for f in parallel.findings)

    def test_jobs_composes_with_the_cache(self, tmp_path):
        """Workers only see cache misses; their results are stored like
        any cold analysis, so the next warm run reuses everything."""
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = lint_paths([pkg], deep=True, cache=cache, jobs=2)
        assert cold.cache_stats.files_reused == 0
        warm = lint_paths([pkg], deep=True, cache=cache, jobs=2)
        assert (
            warm.cache_stats.files_reused == warm.cache_stats.files_total
        )
        assert renders(cold) == renders(warm)
        # ... and a serial warm run reads the parallel-written cache.
        serial_warm = lint_paths([pkg], deep=True, cache=cache)
        assert renders(serial_warm) == renders(warm)
        assert (
            serial_warm.cache_stats.files_reused
            == serial_warm.cache_stats.files_total
        )

    def test_jobs_partial_cache_ships_only_misses(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([pkg], deep=True, cache=cache)
        (pkg / "core" / "leaky.py").write_text(
            BAD + "\n\nX = 1\n", encoding="utf-8"
        )
        warm = lint_paths([pkg], deep=True, cache=cache, jobs=2)
        assert (
            warm.cache_stats.files_reused
            == warm.cache_stats.files_total - 1
        )
        assert renders(warm) == renders(lint_paths([pkg], deep=True))


class TestInvalidation:
    def test_editing_one_file_reanalyzes_only_it(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([pkg], deep=True, cache=cache)
        leaky = pkg / "core" / "leaky.py"
        leaky.write_text(BAD + "\n\nX = 1\n", encoding="utf-8")
        warm = lint_paths([pkg], deep=True, cache=cache)
        assert (
            warm.cache_stats.files_reused
            == warm.cache_stats.files_total - 1
        )
        assert renders(warm) == renders(lint_paths([pkg], deep=True))

    def test_scope_rules_survive_out_of_scope_edits(self, tmp_path):
        """The thread family declares ``deep_dependencies = "scope"``
        (service/ only): editing a core module must replay it from cache
        while the project-wide families re-run."""
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([pkg], deep=True, cache=cache)
        (pkg / "core" / "leaky.py").write_text(
            BAD + "\n\nX = 1\n", encoding="utf-8"
        )
        warm = lint_paths([pkg], deep=True, cache=cache)
        stats = warm.cache_stats
        # OPQ701 + OPQ702 + OPQ772 + OPQ773 replay; every
        # "project"-dependency rule reruns.
        assert stats.deep_rules_reused == 4
        assert stats.deep_rules_total > stats.deep_rules_reused

    def test_in_scope_edit_invalidates_the_scope_rules_too(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([pkg], deep=True, cache=cache)
        (pkg / "service" / "holder.py").write_text(
            GOOD + "\n\nX = 1\n", encoding="utf-8"
        )
        warm = lint_paths([pkg], deep=True, cache=cache)
        assert warm.cache_stats.deep_rules_reused == 0

    def test_deleted_file_entry_is_dropped(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([pkg], deep=True, cache=cache)
        (pkg / "core" / "leaky.py").unlink()
        warm = lint_paths([pkg], deep=True, cache=cache)
        assert renders(warm) == renders(lint_paths([pkg], deep=True))
        files = json.loads(cache.read_text(encoding="utf-8"))["files"]
        assert not any(key.endswith("leaky.py") for key in files)

    def test_changed_options_invalidate_wholesale(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([pkg], deep=True, cache=cache)
        rerun = lint_paths(
            [pkg], deep=True, cache=cache, ignore=["one-pass-sort"]
        )
        assert rerun.cache_stats.files_reused == 0

    def test_parse_failures_are_never_cached(self, tmp_path):
        pkg = make_tree(tmp_path)
        broken = pkg / "core" / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        cold = lint_paths([pkg], deep=True, cache=cache)
        warm = lint_paths([pkg], deep=True, cache=cache)
        assert [f.rule_id for f in cold.findings].count("parse-error") == 1
        assert renders(cold) == renders(warm)
        files = json.loads(cache.read_text(encoding="utf-8"))["files"]
        assert not any(key.endswith("broken.py") for key in files)
