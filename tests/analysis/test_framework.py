"""Tests for the opaqlint framework itself: suppressions, registry,
scoping, runner and reporters."""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    JSON_SCHEMA_VERSION,
    all_rules,
    get_rule,
    lint_paths,
    parse_module,
    render_json,
    render_rule_list,
    render_text,
)
from repro.analysis.framework import Finding, Suppressions, dotted_name
from repro.analysis.runner import iter_python_files
from repro.errors import ConfigError

FIXTURES = Path(__file__).parent / "fixtures"


def _finding(rule_id="one-pass-sort", code="OPQ101", line=1):
    return Finding(
        rule_id=rule_id, code=code, path="x.py", line=line, col=0, message="m"
    )


class TestSuppressions:
    def test_bare_ignore_silences_everything(self):
        sup = Suppressions("x = 1  # opaq: ignore\n")
        assert sup.silences(_finding(line=1))
        assert sup.silences(_finding(rule_id="anything", code="OPQ999", line=1))

    def test_bracketed_ignore_silences_named_rule_only(self):
        sup = Suppressions("x = 1  # opaq: ignore[one-pass-sort]\n")
        assert sup.silences(_finding(line=1))
        assert not sup.silences(_finding(rule_id="memory-materialize", line=1))

    def test_code_works_in_brackets(self):
        sup = Suppressions("x = 1  # opaq: ignore[OPQ101]\n")
        assert sup.silences(_finding(line=1))

    def test_comma_separated_ids(self):
        sup = Suppressions("x = 1  # opaq: ignore[one-pass-sort, OPQ501]\n")
        assert sup.silences(_finding(line=1))
        assert sup.silences(_finding(rule_id="exception-foreign-raise", code="OPQ501"))

    def test_other_lines_not_silenced(self):
        sup = Suppressions("x = 1  # opaq: ignore\ny = 2\n")
        assert not sup.silences(_finding(line=2))


class TestRegistry:
    def test_five_rule_families_registered(self):
        families = {rule.code[:4] for rule in all_rules()}
        assert {"OPQ1", "OPQ2", "OPQ3", "OPQ4", "OPQ5"} <= families

    def test_lookup_by_id_and_code(self):
        assert get_rule("one-pass-sort") is get_rule("OPQ101")

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="unknown rule"):
            get_rule("no-such-rule")

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.description, rule.rule_id
            assert rule.paper_ref, rule.rule_id


class TestScoping:
    def test_fixture_files_in_scope_for_all_rules(self):
        ctx = parse_module("x = 1\n")
        assert ctx.package_rel is None
        for rule in all_rules():
            assert rule.in_scope(ctx)

    def test_package_files_scoped_by_prefix(self):
        src = Path(repro.__file__).parent
        from repro.analysis.framework import ModuleContext

        ctx = ModuleContext.from_path(src / "workloads" / "generators.py")
        assert ctx.package_rel == "workloads/generators.py"
        assert not get_rule("one-pass-sort").in_scope(ctx)
        assert not get_rule("determinism-unseeded-rng").in_scope(ctx)
        assert get_rule("exception-foreign-raise").in_scope(ctx)

    def test_dotted_name_helper(self):
        import ast

        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(expr) == "a.b.c"
        call = ast.parse("f(x)[0]", mode="eval").body
        assert dotted_name(call) is None


class TestRunner:
    def test_missing_path_rejected(self):
        with pytest.raises(ConfigError, match="no such file"):
            lint_paths(["/does/not/exist.py"])

    def test_non_python_file_rejected(self, tmp_path):
        other = tmp_path / "notes.txt"
        other.write_text("hello")
        with pytest.raises(ConfigError, match="not a Python file"):
            lint_paths([other])

    def test_unparseable_file_becomes_a_finding(self, tmp_path):
        # One broken file must not hide findings in the files that parse.
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        good = tmp_path / "fine.py"
        good.write_text("import time\n\ndef f():\n    return time.time()\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 2
        codes = {(f.code, Path(f.path).name) for f in result.findings}
        assert ("OPQ901", "broken.py") in codes
        # The parseable neighbour was still checked (wall-clock rule).
        assert ("OPQ301", "fine.py") in codes
        parse = next(f for f in result.findings if f.code == "OPQ901")
        assert "cannot parse" in parse.message
        assert parse.line >= 1

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["real.py"]

    def test_deep_suppression_not_judged_unused_on_shallow_runs(self, tmp_path):
        # A directive naming a ProjectRule only gets its chance to be used
        # under --deep; a shallow run must not call it stale, or inline
        # deep suppressions would break the default CI pass.
        mod = tmp_path / "svc.py"
        mod.write_text("x = 1  # opaq: ignore[thread-unguarded-write]\n")
        shallow = lint_paths([mod])
        assert shallow.findings == []
        deep = lint_paths([mod], deep=True)
        assert [f.code for f in deep.findings] == ["OPQ902"]

    def test_mixed_directive_reports_only_shallow_ids_on_shallow_runs(
        self, tmp_path
    ):
        mod = tmp_path / "svc.py"
        mod.write_text("x = 1  # opaq: ignore[one-pass-sort, OPQ701]\n")
        result = lint_paths([mod])
        assert [f.code for f in result.findings] == ["OPQ902"]
        assert "one-pass-sort" in result.findings[0].message
        assert "OPQ701" not in result.findings[0].message

    def test_findings_sorted_by_location(self):
        result = lint_paths([FIXTURES / "bad_one_pass_sort.py"])
        keys = [(f.path, f.line, f.col) for f in result.findings]
        assert keys == sorted(keys)


class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        result = lint_paths([FIXTURES / "bad_exceptions.py"])
        text = render_text(result)
        assert "bad_exceptions.py:" in text
        assert "OPQ501[exception-foreign-raise]" in text
        assert "finding(s)" in text.splitlines()[-1]

    def test_text_report_clean(self):
        result = lint_paths([FIXTURES / "good_exceptions.py"])
        assert render_text(result).startswith("clean:")

    def test_json_schema(self):
        result = lint_paths([FIXTURES / "bad_exceptions.py"])
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["count"] == len(payload["findings"]) > 0
        assert payload["files_checked"] == 1
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "code", "path", "line", "col", "message"}

    def test_rule_list_covers_every_rule(self):
        listing = render_rule_list()
        for rule in all_rules():
            assert rule.code in listing
            assert rule.rule_id in listing
