"""Golden-output tests for the per-function CFG builder.

``CFG.describe()`` renders a stable text form; these tests pin it for
the shapes the dataflow rules lean on hardest — finally routing, loop
``else`` vs ``break``, nested ``with`` enter/exit events — so a builder
regression shows up as a readable graph diff, not a mystery finding.
"""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg


def cfg_of(source: str):
    fn = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(fn)


class TestGoldenShapes:
    def test_try_finally_routes_both_exits_through_finally(self):
        cfg = cfg_of(
            """
            def f(path):
                fh = open(path)
                try:
                    data = fh.read()
                    if not data:
                        return None
                finally:
                    fh.close()
                return data
            """
        )
        assert cfg.describe() == textwrap.dedent(
            """\
            B0<entry> -> B2
            B1<exit>
            B2<body>: assign -> B5
            B3<after-try>: return -> B1
            B4<finally>: expr -> B1 B3
            B5<try>: assign branch(if) -> B6 B7
            B6<then>: return -> B4
            B7<after-if> -> B4"""
        )

    def test_while_else_runs_on_normal_exit_not_break(self):
        cfg = cfg_of(
            """
            def f(items):
                n = 0
                while n < 10:
                    if bad(items):
                        break
                    n += 1
                else:
                    finish(items)
                return n
            """
        )
        assert cfg.describe() == textwrap.dedent(
            """\
            B0<entry> -> B2
            B1<exit>
            B2<body>: assign -> B3
            B3<loop-head>: branch(while) -> B5 B8
            B4<after-loop>: return -> B1
            B5<loop-body>: branch(if) -> B6 B7
            B6<then>: break -> B4
            B7<after-if>: augassign -> B3
            B8<loop-else>: expr -> B4"""
        )

    def test_nested_with_emits_paired_enter_exit_events(self):
        cfg = cfg_of(
            """
            def f(service):
                with service.swap_lock:
                    with service.state_lock:
                        service.counter += 1
                    service.publish()
            """
        )
        assert cfg.describe() == textwrap.dedent(
            """\
            B0<entry> -> B2
            B1<exit>
            B2<body> -> B3
            B3<with>: with-enter -> B4
            B4<with>: with-enter augassign -> B5
            B5<with-exit>: with-exit expr -> B6
            B6<with-exit>: with-exit -> B1"""
        )


class TestStructuralProperties:
    def test_for_loop_has_back_edge_and_after_edge(self):
        cfg = cfg_of(
            """
            def f(reader):
                for run in reader:
                    work(run)
                done()
            """
        )
        heads = [
            b for b in cfg.iter_blocks() if any(o.kind == "for-iter" for o in b.ops)
        ]
        assert len(heads) == 1
        head = heads[0]
        # The loop body points back at the head; the head also exits.
        assert any(head.id in cfg.blocks[p].succs for p in head.preds)
        assert len(head.succs) == 2

    def test_raise_inside_try_reaches_every_handler(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    step_one(x)
                    step_two(x)
                except ValueError:
                    a()
                except OSError:
                    b()
            """
        )
        handler_ids = {
            b.id for b in cfg.iter_blocks() if any(o.kind == "except" for o in b.ops)
        }
        assert len(handler_ids) == 2
        try_blocks = [b for b in cfg.iter_blocks() if b.label == "try"]
        assert try_blocks
        for block in try_blocks:
            assert handler_ids <= set(block.succs)

    def test_nested_finally_chains_innermost_to_outermost(self):
        # A return inside nested try/finally runs *both* suites: the
        # inner finally continues into the outer one, and only the
        # outer finally edges to the exit.
        cfg = cfg_of(
            """
            def f(x):
                try:
                    try:
                        return g(x)
                    finally:
                        inner(x)
                finally:
                    outer(x)
            """
        )
        fins = [b for b in cfg.iter_blocks() if b.label == "finally"]
        assert len(fins) == 2
        outer_fin, inner_fin = fins  # creation order: outer built first
        assert outer_fin.id in inner_fin.succs
        assert cfg.exit not in inner_fin.succs
        assert cfg.exit in outer_fin.succs

    def test_unwind_from_inner_try_chains_through_outer_finally(self):
        # An unhandled exception inside the inner try/finally must also
        # reach the exit through the outer finally, not directly.
        cfg = cfg_of(
            """
            def f(x):
                try:
                    try:
                        risky(x)
                    finally:
                        inner(x)
                finally:
                    outer(x)
            """
        )
        fins = [b for b in cfg.iter_blocks() if b.label == "finally"]
        outer_fin, inner_fin = fins
        assert outer_fin.id in inner_fin.succs
        assert cfg.exit not in inner_fin.succs
        assert cfg.exit in outer_fin.succs

    def test_await_emits_suspension_ops_in_statement_order(self):
        cfg = cfg_of(
            """
            async def f(client, key):
                value = await client.fetch(key)
                if value is None:
                    value = await client.refetch(key)
                return value
            """
        )
        assert cfg.is_coroutine
        assert cfg.describe() == textwrap.dedent(
            """\
            B0<entry> -> B2
            B1<exit>
            B2<body>: assign await branch(if) -> B3 B4
            B3<then>: assign await -> B4
            B4<after-if>: return -> B1"""
        )
        # Every await op is a suspension point and evaluates nothing
        # itself (its operand belongs to the carrying statement).
        awaits = [
            op
            for block in cfg.iter_blocks()
            for op in block.ops
            if op.kind == "await"
        ]
        assert len(awaits) == 2
        assert all(op.suspends for op in awaits)
        assert all(op.expr_roots() == [] for op in awaits)

    def test_async_with_enter_and_exit_are_suspension_points(self):
        cfg = cfg_of(
            """
            async def g(pool):
                async with pool.acquire() as conn:
                    rows = await conn.execute()
                return rows
            """
        )
        assert cfg.describe() == textwrap.dedent(
            """\
            B0<entry> -> B2
            B1<exit>
            B2<body> -> B3
            B3<with>: with-enter assign await -> B4
            B4<with-exit>: with-exit return -> B1"""
        )
        suspends = [
            (op.kind, getattr(op.node, "lineno", None))
            for block in cfg.iter_blocks()
            for op in block.ops
            if op.suspends
        ]
        assert suspends == [("with-enter", 3), ("await", 4), ("with-exit", 3)]

    def test_async_for_iteration_suspends_each_trip(self):
        cfg = cfg_of(
            """
            async def h(source, sink):
                async for item in source:
                    await sink.put(item)
            """
        )
        assert cfg.describe() == textwrap.dedent(
            """\
            B0<entry> -> B2
            B1<exit>
            B2<body> -> B3
            B3<loop-head>: for-iter -> B4 B5
            B4<after-loop> -> B1
            B5<loop-body>: expr await -> B3"""
        )
        head = next(
            b
            for b in cfg.iter_blocks()
            if any(o.kind == "for-iter" for o in b.ops)
        )
        assert all(op.suspends for op in head.ops if op.kind == "for-iter")

    def test_sync_shapes_never_suspend_and_nested_awaits_stay_inner(self):
        cfg = cfg_of(
            """
            def f(lock, items):
                with lock:
                    total = sum(items)

                async def helper(q):
                    return await q.get()

                return total
            """
        )
        assert not cfg.is_coroutine
        # The nested coroutine's await belongs to *its* CFG, not to the
        # enclosing sync function's.
        assert all(
            not op.suspends
            for block in cfg.iter_blocks()
            for op in block.ops
        )
        assert "await" not in cfg.describe()

    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                x = 2
            """
        )
        reachable = cfg.reachable()
        dead = [b for b in cfg.iter_blocks() if b.label == "dead"]
        assert dead and all(b.id not in reachable for b in dead)
        assert "dead" not in cfg.describe()  # golden form hides dead code

    def test_continue_targets_loop_head(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    if skip(item):
                        continue
                    use(item)
            """
        )
        head = next(
            b for b in cfg.iter_blocks() if any(o.kind == "for-iter" for o in b.ops)
        )
        continue_blocks = [
            b
            for b in cfg.iter_blocks()
            if any(isinstance(o.node, ast.Continue) for o in b.ops)
        ]
        assert continue_blocks
        assert all(head.id in b.succs for b in continue_blocks)

    @pytest.mark.parametrize(
        "source",
        [
            "def f():\n    pass\n",
            "def f(x):\n    while x:\n        x -= 1\n",
            "def f(x):\n    try:\n        g(x)\n    except Exception:\n        pass\n    finally:\n        h(x)\n",
            "async def f(xs):\n    async for x in xs:\n        await g(x)\n",
            "def f(x):\n    with a(), b():\n        return x\n",
        ],
    )
    def test_entry_reaches_exit(self, source):
        cfg = cfg_of(source)
        assert cfg.exit in cfg.reachable()
