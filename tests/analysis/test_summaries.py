"""Function summaries: seeded effects, transitive propagation through
the call graph, and fixpoint convergence on call-graph cycles."""

import textwrap

from repro.analysis import build_project
from repro.analysis.runner import parse_module
from repro.analysis.summaries import qualified_lock


def project_of(source: str):
    return build_project([parse_module(textwrap.dedent(source))])


def fn_named(project, name):
    for fn in project.iter_functions():
        if fn.qualname.split(":")[-1] == name:
            return fn
    raise AssertionError(f"no function named {name}")


class TestSeededEffects:
    def test_direct_iteration_consumes_the_parameter(self):
        project = project_of(
            """
            def eat(items):
                for item in items:
                    pass
            """
        )
        index = project.summaries()
        assert "items" in index.summary_of(fn_named(project, "eat")).consumes_params

    def test_release_methods_and_unlink_are_kind_aware(self):
        project = project_of(
            """
            def put_back(handle):
                handle.close()

            def destroy(segment):
                segment.unlink()
            """
        )
        index = project.summaries()
        put_back = index.summary_of(fn_named(project, "put_back"))
        destroy = index.summary_of(fn_named(project, "destroy"))
        assert "handle" in put_back.releases_params
        assert "handle" not in put_back.unlinks_params  # close != unlink
        assert "segment" in destroy.releases_params
        assert "segment" in destroy.unlinks_params

    def test_storing_and_returning_escape_the_parameter(self):
        project = project_of(
            """
            _KEEP = []

            def stash(handle):
                _KEEP.append(handle)
                _KEEP[0] = handle

            def hand_back(handle):
                return handle
            """
        )
        index = project.summaries()
        assert "handle" in index.summary_of(fn_named(project, "stash")).escapes_params
        assert (
            "handle"
            in index.summary_of(fn_named(project, "hand_back")).escapes_params
        )

    def test_lock_acquisition_and_unbounded_blocking_are_recorded(self):
        project = project_of(
            """
            import threading

            _swap_lock = threading.Lock()

            def swap(q):
                with _swap_lock:
                    pass
                q.get()
            """
        )
        index = project.summaries()
        summary = index.summary_of(fn_named(project, "swap"))
        assert any(name.endswith("_swap_lock") for name in summary.acquires_locks)
        assert any("q.get()" in site for site in summary.blocking_calls)


class TestTransitivePropagation:
    def test_forwarding_to_a_consumer_consumes(self):
        project = project_of(
            """
            def eat(items):
                for item in items:
                    pass

            def outer(stream):
                eat(stream)
            """
        )
        index = project.summaries()
        assert (
            "stream" in index.summary_of(fn_named(project, "outer")).consumes_params
        )

    def test_release_and_unlink_flow_through_helpers(self):
        project = project_of(
            """
            def _quietly(segment):
                segment.unlink()

            def dispose(segment):
                _quietly(segment)
            """
        )
        index = project.summaries()
        dispose = index.summary_of(fn_named(project, "dispose"))
        assert "segment" in dispose.releases_params
        assert "segment" in dispose.unlinks_params

    def test_locks_and_blocking_flow_up_without_bindings(self):
        project = project_of(
            """
            import threading

            _state_lock = threading.Lock()

            def _inner(q):
                with _state_lock:
                    q.wait()

            def outer(q):
                _inner(q)
            """
        )
        index = project.summaries()
        outer = index.summary_of(fn_named(project, "outer"))
        assert any(n.endswith("_state_lock") for n in outer.acquires_locks)
        assert outer.blocking_calls


class TestFixpointOnCycles:
    def test_mutual_recursion_converges_and_propagates(self):
        # ping <-> pong form a call-graph cycle; the grow-only summaries
        # must reach a fixpoint (termination IS the assertion) with the
        # consume fact visible from both entry points.
        project = project_of(
            """
            def ping(stream, n):
                if n:
                    pong(stream, n - 1)
                for item in stream:
                    pass

            def pong(stream, n):
                ping(stream, n)
            """
        )
        index = project.summaries()
        for name in ("ping", "pong"):
            assert (
                "stream"
                in index.summary_of(fn_named(project, name)).consumes_params
            ), name

    def test_self_recursion_converges(self):
        project = project_of(
            """
            def drain(stream):
                for item in stream:
                    drain(stream)
            """
        )
        index = project.summaries()
        assert (
            "stream" in index.summary_of(fn_named(project, "drain")).consumes_params
        )


class TestVerdicts:
    def test_consumption_verdict_contract(self):
        # True: resolved consuming candidate; False: every candidate
        # resolved and none consumes; None: unknown callee.
        import ast

        project = project_of(
            """
            def eat(items):
                for item in items:
                    pass

            def count(items):
                return 0

            def caller(stream):
                eat(stream)
                count(stream)
                mystery(stream)
            """
        )
        index = project.summaries()
        caller = fn_named(project, "caller")
        calls = {
            node.func.id: node
            for node in ast.walk(caller.node)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }
        assert index.consumption_verdict(
            caller, "eat", "stream", calls["eat"]
        )[0] is True
        assert index.consumption_verdict(
            caller, "count", "stream", calls["count"]
        )[0] is False
        assert index.consumption_verdict(
            caller, "mystery", "stream", calls["mystery"]
        )[0] is None

    def test_qualified_lock_spellings(self):
        project = project_of(
            """
            import threading

            class Snapshotter:
                def __init__(self):
                    self._lock = threading.Lock()

                def swap(self):
                    with self._lock:
                        pass
            """
        )
        swap = fn_named(project, "Snapshotter.swap")
        assert qualified_lock("self._lock", swap) == "Snapshotter._lock"
        assert qualified_lock("_g_lock", swap).endswith(".py:_g_lock")
