"""The OPQ25x family must *derive* the parallel backend's documented
shared-memory lifetime contract — not restate it.

``docs/parallel.md`` promises: every ``SharedMemory`` segment the
process backend creates is closed and unlinked on every path, with
ownership of large-array segments transferred by name to exactly one
consumer.  These tests build the resource model over the real
``repro.parallel`` sources and assert that contract as facts the
analyzer proved on its own.
"""

from pathlib import Path

import repro
from repro.analysis import build_project
from repro.analysis.framework import ModuleContext
from repro.analysis.rules_resources import function_resource_facts
from repro.analysis.runner import iter_python_files

PARALLEL = Path(repro.__file__).parent / "parallel"


def parallel_project():
    modules = [
        ModuleContext.from_path(p) for p in iter_python_files([PARALLEL])
    ]
    return build_project(modules)


def facts_of(project, qualname_suffix):
    for fn in project.iter_functions():
        if fn.qualname.endswith(qualname_suffix):
            return fn, function_resource_facts(project, fn)
    raise AssertionError(f"no function {qualname_suffix}")


class TestShmLifetimeContract:
    def test_every_shm_acquisition_in_process_py_is_released_on_all_paths(
        self,
    ):
        """The headline proof: no path — normal or unwinding — leaves a
        named segment behind anywhere in the process backend."""
        project = parallel_project()
        checked = 0
        for fn in project.iter_functions():
            if fn.module.path.name != "process.py":
                continue
            for fact in function_resource_facts(project, fn):
                if not fact.acquisition.kind.startswith("shm-"):
                    continue
                checked += 1
                assert fact.released_on_all_paths, (
                    fn.qualname,
                    fact.acquisition.token,
                )
                assert fact.exception_safe, (fn.qualname, fact.acquisition)
        assert checked >= 2  # _pack creates, _unpack attaches

    def test_pack_transfers_the_segment_name_sanctioned(self):
        """_pack ships the segment name inside the descriptor — that
        capability escape must carry the transfer annotation."""
        project = parallel_project()
        _, facts = facts_of(project, ":_pack")
        (fact,) = [
            f for f in facts if f.acquisition.kind == "shm-create"
        ]
        capability = [e for e in fact.escapes if e.via == "capability"]
        assert capability, "the name hand-off must be visible as an escape"
        assert all(e.sanctioned for e in capability)

    def test_unpack_attaches_and_unlinks(self):
        """_unpack owns the attached segment end-to-end: its release is
        recorded (through the _unlink_quietly helper's summary) and
        nothing escapes."""
        project = parallel_project()
        _, facts = facts_of(project, ":_unpack")
        (fact,) = [
            f for f in facts if f.acquisition.kind == "shm-attach"
        ]
        assert fact.release_lines
        assert fact.released_on_all_paths
        assert all(e.sanctioned for e in fact.escapes)

    def test_unlink_helper_summary_counts_as_release(self):
        """The `_unlink_quietly(segment)` call is a release *because of
        the callee's summary*, not its name."""
        project = parallel_project()
        index = project.summaries()
        helper = next(
            fn
            for fn in project.iter_functions()
            if fn.qualname.endswith(":_unlink_quietly")
        )
        summary = index.summary_of(helper)
        assert "segment" in summary.releases_params
        assert "segment" in summary.unlinks_params
