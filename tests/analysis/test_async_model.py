"""The OPQ77x family must *derive* the asyncio server's documented
contract — not restate it.

``docs/service.md`` promises that the event loop in ``service/aio.py``
never blocks: every registry/engine mutation crosses the ``_blocking``
offload boundary (``run_in_executor`` under a ``wait_for`` deadline) and
only the lock-free snapshot read is answered inline.  These tests build
the async model over the real ``repro.service`` sources and assert that
contract as facts the analyzer inferred on its own.
"""

import ast
from pathlib import Path

import repro
from repro.analysis import build_project, lint_paths
from repro.analysis.framework import ModuleContext
from repro.analysis.runner import iter_python_files
from repro.analysis.rules_async import (
    ROLE_EVENT_LOOP,
    ROLE_THREAD,
    _Resolver,
    _scoped_items,
    blocking_reasons,
    build_async_model,
)

SERVICE = Path(repro.__file__).parent / "service"


def service_project():
    modules = [
        ModuleContext.from_path(p) for p in iter_python_files([SERVICE])
    ]
    return build_project(modules)


def async_model(project):
    return build_async_model(project, list(project.classes))


def fn_named(project, qualname: str):
    cls_name, _, name = qualname.partition(".")
    for cls in project.class_named(cls_name):
        if name in cls.methods:
            return cls.methods[name]
    raise AssertionError(f"no {qualname} in the service project")


class TestDerivedRoles:
    def test_every_aio_handler_is_event_loop_role(self):
        project = service_project()
        model = async_model(project)
        for method in ("_handle", "_dispatch", "_serve_connection"):
            fn = fn_named(project, f"AsyncServiceServer.{method}")
            assert ROLE_EVENT_LOOP in model.roles_of(fn), method

    def test_offloaded_callees_carry_the_thread_role(self):
        # self._blocking(self.service.stats) crosses the role boundary:
        # the engine's stats/snapshot/ingest paths run on executor
        # threads, not on the loop.
        project = service_project()
        model = async_model(project)
        for method in ("stats", "snapshot", "ingest"):
            fn = fn_named(project, f"QuantileService.{method}")
            assert ROLE_THREAD in model.roles_of(fn), method

    def test_the_offload_summary_is_transitive(self):
        # _blocking's summary records that its `fn` parameter is handed
        # to run_in_executor — the seed every thread role flows from.
        project = service_project()
        blocking = fn_named(project, "AsyncServiceServer._blocking")
        summary = project.summaries().summary_of(blocking)
        assert "fn" in summary.offloads_params


class TestDerivedInvariants:
    def test_the_event_loop_never_blocks(self):
        """The marquee fact: no coroutine in the service calls blocking
        synchronous code inline — except the one documented inline
        answer path (the lock-free quantile read), which carries its
        suppression in the source."""
        project = service_project()
        classes = list(project.classes)
        resolver = _Resolver(project, classes)
        offenders = []
        for cls in classes:
            for fn in cls.methods.values():
                if not isinstance(fn.node, ast.AsyncFunctionDef):
                    continue
                for call, why in blocking_reasons(project, resolver, fn):
                    offenders.append((fn.qualname, call.lineno, why))
        assert len(offenders) == 1, offenders
        qualname, _, why = offenders[0]
        assert qualname == "aio.py:AsyncServiceServer._handle"
        # ... and that one site is the suppressed _answer_quantiles
        # call, acknowledged in the source as the documented exception.
        assert "_answer_quantiles" in why

    def test_no_threading_lock_spans_a_suspension(self):
        """Second derived fact: the must-held threading-lock set is
        empty at every suspension point of every service coroutine."""
        from repro.analysis.dataflow import (
            ThreadLockTracker,
            iter_ops_with_facts,
        )

        project = service_project()
        for cls in project.classes:
            for fn in cls.methods.values():
                if not isinstance(fn.node, ast.AsyncFunctionDef):
                    continue
                cfg = project.cfg(fn)
                for op, held in iter_ops_with_facts(
                    cfg, ThreadLockTracker()
                ):
                    assert not (op.suspends and held), (
                        fn.qualname,
                        getattr(op.node, "lineno", None),
                        held,
                    )

    def test_deep_lint_is_clean_over_the_service(self):
        result = lint_paths(
            [SERVICE],
            select=["OPQ771", "OPQ772", "OPQ773", "OPQ774"],
            deep=True,
        )
        assert result.findings == [], result.findings


class TestResolutionPrecision:
    """The precision bits that keep OPQ771 quiet on external receivers."""

    def test_annotated_field_resolves_precisely(self):
        project = service_project()
        handle = fn_named(project, "AsyncServiceServer._handle")
        resolver = _Resolver(project, list(project.classes))
        candidates, precise = resolver.resolve(handle, "self.service.stats")
        assert precise
        assert [c.qualname for c in candidates] == [
            "engine.py:QuantileService.stats"
        ]

    def test_external_receiver_is_precisely_empty(self):
        # writer: asyncio.StreamWriter — a known type outside the
        # project: precise and empty means "out of judgement", not
        # "every close() in the repo might run".
        project = service_project()
        serve = fn_named(project, "AsyncServiceServer._serve_connection")
        resolver = _Resolver(project, list(project.classes))
        candidates, precise = resolver.resolve(serve, "writer.close")
        assert precise
        assert candidates == []

    def test_scoped_items_matches_rule_scope(self):
        from repro.analysis.rules_async import BlockingCallInCoroutineRule

        project = service_project()
        classes, functions, _ = _scoped_items(
            BlockingCallInCoroutineRule(), project
        )
        assert {c.name for c in classes} >= {
            "AsyncServiceServer",
            "QuantileService",
        }
        scoped_modules = {id(c.module) for c in classes}
        assert all(id(fn.module) in scoped_modules for fn in functions)
