"""The OPQ7xx family must *derive* the service layer's documented
concurrency invariants — not restate them.

``docs/service.md`` promises: each shard worker thread sole-owns its
estimator state, the served snapshot reference is swapped only under the
snapshotter's lock, and readers are lock-free.  These tests build the
thread model over the real ``repro.service`` sources and assert those
invariants as facts the analyzer inferred on its own.
"""

import textwrap
from pathlib import Path

import repro
from repro.analysis import build_project, build_thread_model, lint_paths
from repro.analysis.framework import ModuleContext
from repro.analysis.runner import iter_python_files, parse_module
from repro.analysis.rules_threads import ROLE_HTTP_HANDLER, ROLE_MAIN

SERVICE = Path(repro.__file__).parent / "service"


def service_model():
    modules = [ModuleContext.from_path(p) for p in iter_python_files([SERVICE])]
    project = build_project(modules)
    return build_thread_model(project)


class TestDerivedRoles:
    def test_shard_worker_loop_runs_in_a_worker_role(self):
        model = service_model()
        worker = model.for_class("ShardWorker")
        assert "worker:ShardWorker._loop" in worker.roles["_loop"]
        # _fold is reached from the loop, so it inherits the role.
        assert "worker:ShardWorker._loop" in worker.roles["_fold"]

    def test_http_handler_methods_carry_the_handler_role(self):
        model = service_model()
        handler = model.for_class("_Handler")
        assert handler is not None
        assert ROLE_HTTP_HANDLER in handler.roles["do_POST"]
        assert handler.per_thread_instances

    def test_handler_role_propagates_into_the_service(self):
        # self.service.ingest(...) crosses the module boundary: the
        # engine's public entry points run under request threads too.
        model = service_model()
        service = model.for_class("QuantileService")
        assert ROLE_HTTP_HANDLER in service.roles["ingest"]
        assert ROLE_MAIN in service.roles["ingest"]

    def test_handler_role_is_concurrent(self):
        model = service_model()
        service = model.for_class("QuantileService")
        assert ROLE_HTTP_HANDLER in service.concurrent_roles


class TestDerivedInvariants:
    def test_worker_estimator_state_is_sole_owned(self):
        """Writers sole-own the estimator: every write to the fold-side
        fields happens from the worker role alone."""
        model = service_model()
        worker = model.for_class("ShardWorker")
        for field in ("_buffer", "_buffered", "_folds", "_latest"):
            writing = worker.writing_roles(field)
            assert writing == {"worker:ShardWorker._loop"}, (field, writing)

    def test_snapshot_swaps_only_under_the_lock(self):
        """Every write to the published snapshot reference holds the
        snapshotter's lock — the swap discipline, derived."""
        model = service_model()
        snap = model.for_class("Snapshotter")
        writes = snap.writes("_snapshot")
        assert writes  # restore() and run_epoch() both publish
        assert all("self._lock" in w.locks for w in writes)
        assert snap.guard_of("_snapshot") == "self._lock"

    def test_snapshot_reads_are_lock_free(self):
        """The `current` property reads the reference without the lock —
        sanctioned because every writer publishes under it."""
        model = service_model()
        snap = model.for_class("Snapshotter")
        reads = [a for a in snap.accesses["_snapshot"] if a.kind == "read"]
        assert any(a.method == "current" and not a.locks for a in reads)

    def test_service_counters_are_guarded_by_the_state_lock(self):
        model = service_model()
        service = model.for_class("QuantileService")
        for field in ("_accepted", "_since_snapshot", "_queries"):
            writes = service.writes(field)
            assert writes, field
            assert all("self._state_lock" in w.locks for w in writes), field
            assert service.guard_of(field) == "self._state_lock"

    def test_queue_fields_are_classified_thread_safe(self):
        model = service_model()
        worker = model.for_class("ShardWorker")
        assert worker.field_is_thread_safe("_queue")
        assert not worker.field_is_thread_safe("_buffer")


class TestAccessPrecision:
    def test_guarded_mutate_in_with_body_carries_the_lock_fact(self):
        """A mutating call inside ``with self._lock:`` belongs to the body
        op, with the lock held — not (also) to the with-enter op with the
        pre-statement fact.  The double record used to make OPQ701 flag
        correctly guarded multi-role code."""
        ctx = parse_module(
            textwrap.dedent(
                """
                import threading
                from http.server import BaseHTTPRequestHandler


                class Service:
                    def __init__(self):
                        self._state_lock = threading.Lock()
                        self._pending = []

                    def submit(self, batch):
                        with self._state_lock:
                            self._pending.append(batch)

                    def drain(self):
                        with self._state_lock:
                            self._pending = []


                class Handler(BaseHTTPRequestHandler):
                    service = Service()

                    def do_POST(self):
                        self.service.submit([1.0])
                """
            )
        )
        model = build_thread_model(build_project([ctx]))
        svc = model.for_class("Service")
        writes = svc.writes("_pending")
        # Exactly one mutate (submit) and one write (drain) — no duplicate
        # access recorded at the with-enter event.
        assert sorted(w.kind for w in writes) == ["mutate", "write"]
        assert all("self._state_lock" in w.locks for w in writes)
        assert svc.writing_roles("_pending") >= {ROLE_MAIN, ROLE_HTTP_HANDLER}


class TestServiceIsDeepClean:
    def test_no_thread_findings_in_the_service_layer(self):
        result = lint_paths([SERVICE], deep=True)
        thread_findings = [
            f for f in result.findings if f.code in ("OPQ701", "OPQ702")
        ]
        assert thread_findings == []
