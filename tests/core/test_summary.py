"""Tests for OPAQSummary (rank bookkeeping, merging, serialisation)."""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig, OPAQSummary
from repro.errors import DataError, EstimationError


def make_summary(samples, gaps, runs=1, **kw):
    samples = np.asarray(samples, dtype=float)
    gaps = np.asarray(gaps, dtype=np.int64)
    defaults = dict(
        num_runs=runs,
        count=int(gaps.sum()),
        minimum=float(samples.min()),
        maximum=float(samples.max()),
    )
    defaults.update(kw)
    return OPAQSummary(samples=samples, gaps=gaps, **defaults)


class TestValidation:
    def test_valid(self):
        s = make_summary([1.0, 2.0, 3.0], [2, 2, 2])
        assert s.count == 6
        assert s.subrun_floor == 2 and s.subrun_ceil == 2

    def test_unsorted_samples_rejected(self):
        with pytest.raises(EstimationError, match="sorted"):
            make_summary([3.0, 1.0], [1, 1])

    def test_gap_shape_mismatch(self):
        with pytest.raises(EstimationError, match="align"):
            make_summary([1.0, 2.0], [1])

    def test_gap_sum_must_match_count(self):
        with pytest.raises(EstimationError, match="sum to"):
            make_summary([1.0, 2.0], [1, 1], count=5)

    def test_zero_gap_rejected(self):
        with pytest.raises(EstimationError, match="at least 1"):
            make_summary([1.0, 2.0], [0, 2], count=2)

    def test_empty_samples_rejected(self):
        with pytest.raises(EstimationError):
            OPAQSummary(
                samples=np.empty(0),
                gaps=np.empty(0, dtype=np.int64),
                num_runs=1,
                count=1,
                minimum=0.0,
                maximum=1.0,
            )

    def test_min_above_max_rejected(self):
        with pytest.raises(EstimationError, match="minimum exceeds"):
            make_summary([1.0], [1], minimum=2.0, maximum=1.0)


class TestRankBookkeeping:
    def test_min_rank_is_cumsum(self):
        s = make_summary([1.0, 2.0, 3.0], [4, 3, 5])
        assert [s.min_rank_at(i) for i in range(3)] == [4, 7, 12]

    def test_max_below_single_run_with_floors(self):
        # Floors carry the "elements of this group are >= floor" fact.
        s = make_summary(
            [1.0, 2.0, 3.0], [4, 4, 4], runs=1, floors=[-np.inf, 1.0, 2.0]
        )
        # v=2.0: groups fully below contribute 4; the only straddler is
        # v's own group (floor 1.0 < 2.0 <= 2.0) at gap-1 = 3 -> 7.
        assert s.max_below_at(1) == 7

    def test_max_below_conservative_without_floors(self):
        # Default -inf floors: every later group is a potential straddler.
        s = make_summary([1.0, 2.0, 3.0], [4, 4, 4], runs=1)
        assert s.max_below_at(1) == 4 + 3 + 3

    def test_max_below_clamped_to_n_minus_one(self):
        s = make_summary([1.0, 2.0], [5, 5], runs=5)
        assert s.max_below_at(1) <= s.count - 1

    def test_index_out_of_range(self):
        s = make_summary([1.0], [3])
        with pytest.raises(EstimationError):
            s.min_rank_at(1)
        with pytest.raises(EstimationError):
            s.max_below_at(-1)

    def test_cumulative_view_read_only(self):
        s = make_summary([1.0, 2.0], [1, 1])
        view = s.cumulative_min_ranks()
        with pytest.raises(ValueError):
            view[0] = 99

    def test_guaranteed_rank_error_divisible_case(self, rng):
        # n=10k, m=1k, s=100 -> n/s per run = 10; r=10 runs.
        config = OPAQConfig(run_size=1000, sample_size=100)
        summary = OPAQ(config).summarize(rng.uniform(size=10_000))
        n_over_s = 10_000 // 100
        assert summary.guaranteed_rank_error() <= n_over_s
        assert summary.memory_footprint == 3 * summary.num_samples


class TestMerge:
    def test_merge_matches_joint_build(self, rng):
        config = OPAQConfig(run_size=500, sample_size=50)
        a_data = rng.uniform(size=2000)
        b_data = rng.uniform(size=1500)
        opaq = OPAQ(config)
        merged = opaq.summarize(a_data).merge(opaq.summarize(b_data))
        joint = opaq.summarize(np.concatenate([a_data, b_data]))
        np.testing.assert_array_equal(np.sort(merged.samples), np.sort(joint.samples))
        assert merged.count == joint.count
        assert merged.num_runs == joint.num_runs

    def test_merge_preserves_extremes(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        opaq = OPAQ(config)
        a = opaq.summarize(rng.uniform(0, 1, size=100))
        b = opaq.summarize(rng.uniform(5, 6, size=100))
        m = a.merge(b)
        assert m.minimum == a.minimum
        assert m.maximum == b.maximum

    def test_add_operator(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        opaq = OPAQ(config)
        a = opaq.summarize(rng.uniform(size=100))
        b = opaq.summarize(rng.uniform(size=100))
        assert (a + b).count == 200

    def test_merge_wrong_type(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        s = OPAQ(config).summarize(rng.uniform(size=100))
        with pytest.raises(EstimationError):
            s.merge("not a summary")


class TestSerialisation:
    def test_roundtrip(self, rng, tmp_path):
        config = OPAQConfig(run_size=100, sample_size=10)
        s = OPAQ(config).summarize(rng.uniform(size=1000))
        path = tmp_path / "summary.npz"
        s.save(path)
        loaded = OPAQSummary.load(path)
        np.testing.assert_array_equal(loaded.samples, s.samples)
        np.testing.assert_array_equal(loaded.gaps, s.gaps)
        assert loaded.count == s.count
        assert loaded.num_runs == s.num_runs
        assert loaded.minimum == s.minimum

    def test_load_missing(self, tmp_path):
        with pytest.raises(DataError):
            OPAQSummary.load(tmp_path / "nope.npz")

    def test_load_malformed(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, wrong_key=np.arange(3))
        with pytest.raises(DataError):
            OPAQSummary.load(path)


class TestFormatStamp:
    """The on-disk format carries a magic + version stamp."""

    def _meta_of(self, path):
        import json

        with np.load(path) as archive:
            return json.loads(bytes(archive["meta"].tobytes()).decode())

    def _write_with_meta(self, s, path, meta):
        import json

        np.savez(
            path,
            samples=s.samples,
            gaps=s.gaps,
            floors=s.floors,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )

    def _fresh(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        return OPAQ(config).summarize(rng.uniform(size=1000))

    def test_save_stamps_magic_and_version(self, rng, tmp_path):
        s = self._fresh(rng)
        path = tmp_path / "stamped.npz"
        s.save(path)
        meta = self._meta_of(path)
        assert meta["magic"] == OPAQSummary.FORMAT_MAGIC == "OPAQSUM"
        assert meta["format"] == OPAQSummary.FORMAT_VERSION

    def test_unknown_version_raises_clearly(self, rng, tmp_path):
        s = self._fresh(rng)
        path = tmp_path / "future.npz"
        self._write_with_meta(
            s,
            path,
            {
                "magic": "OPAQSUM",
                "num_runs": s.num_runs,
                "count": s.count,
                "minimum": s.minimum,
                "maximum": s.maximum,
                "format": 99,
            },
        )
        with pytest.raises(DataError, match="format version 99"):
            OPAQSummary.load(path)
        with pytest.raises(DataError, match="upgrade the library"):
            OPAQSummary.load(path)

    def test_wrong_magic_raises_clearly(self, rng, tmp_path):
        s = self._fresh(rng)
        path = tmp_path / "alien.npz"
        self._write_with_meta(
            s,
            path,
            {
                "magic": "NOTOPAQ",
                "num_runs": s.num_runs,
                "count": s.count,
                "minimum": s.minimum,
                "maximum": s.maximum,
                "format": 5,
            },
        )
        with pytest.raises(DataError, match="not an OPAQ summary"):
            OPAQSummary.load(path)

    def test_missing_version_rejected(self, rng, tmp_path):
        s = self._fresh(rng)
        path = tmp_path / "unversioned.npz"
        self._write_with_meta(
            s,
            path,
            {
                "num_runs": s.num_runs,
                "count": s.count,
                "minimum": s.minimum,
                "maximum": s.maximum,
            },
        )
        with pytest.raises(DataError, match="format version None"):
            OPAQSummary.load(path)


class TestCompaction:
    def test_compact_halves_samples(self, rng):
        config = OPAQConfig(run_size=1000, sample_size=100)
        s = OPAQ(config).summarize(rng.uniform(size=10_000))
        c = s.compact(2)
        assert c.num_samples == s.num_samples // 2
        assert c.count == s.count
        assert c.num_runs == s.num_runs

    def test_compact_preserves_mass_and_extremes(self, rng):
        config = OPAQConfig(run_size=1000, sample_size=100)
        data = rng.uniform(size=10_000)
        s = OPAQ(config).summarize(data)
        c = s.compact(4)
        assert c.gaps.sum() == data.size
        assert c.samples[-1] == data.max()
        assert c.minimum == s.minimum and c.maximum == s.maximum

    def test_compact_floors_take_group_minimum(self, rng):
        config = OPAQConfig(run_size=1000, sample_size=100)
        s = OPAQ(config).summarize(rng.uniform(size=10_000))
        c = s.compact(8)
        assert c.subrun_ceil > s.subrun_ceil
        # Every surviving group's floor bounds its members' floors.
        assert np.all(c.floors[1:] <= c.samples[:-1] + 1e-12)
        assert c.floors.min() == -np.inf

    def test_compact_factor_one_identity(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        s = OPAQ(config).summarize(rng.uniform(size=1000))
        assert s.compact(1) is s

    def test_compact_bad_factor(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        s = OPAQ(config).summarize(rng.uniform(size=1000))
        with pytest.raises(EstimationError):
            s.compact(0)

    def test_compact_to_target(self, rng):
        config = OPAQConfig(run_size=1000, sample_size=100)
        s = OPAQ(config).summarize(rng.uniform(size=10_000))
        c = s.compact_to(300)
        assert c.num_samples <= 300
        assert s.compact_to(10_000) is s
        with pytest.raises(EstimationError):
            s.compact_to(0)

    def test_compacted_bounds_still_enclose(self, rng):
        from repro.core import quantile_bounds

        config = OPAQConfig(run_size=1000, sample_size=100)
        data = rng.uniform(size=20_000)
        s = OPAQ(config).summarize(data)
        sd = np.sort(data)
        for factor in (2, 3, 7, 50):
            c = s.compact(factor)
            for phi in (0.01, 0.25, 0.5, 0.75, 0.99, 1.0):
                b = quantile_bounds(c, phi)
                assert b.lower <= sd[b.rank - 1] <= b.upper

    def test_compacted_guarantee_degrades_gracefully(self, rng):
        config = OPAQConfig(run_size=1000, sample_size=100)
        s = OPAQ(config).summarize(rng.uniform(size=20_000))
        g1 = s.guaranteed_rank_error()
        g2 = s.compact(2).guaranteed_rank_error()
        # Roughly doubles — NOT multiplied by the number of runs.
        assert g1 < g2 < 4 * g1

    def test_format2_summary_still_loads(self, rng, tmp_path):
        """Backwards compatibility with pre-max_subrun archives."""
        import json

        config = OPAQConfig(run_size=100, sample_size=10)
        s = OPAQ(config).summarize(rng.uniform(size=1000))
        meta = {
            "num_runs": s.num_runs,
            "count": s.count,
            "minimum": s.minimum,
            "maximum": s.maximum,
            "format": 2,
        }
        path = tmp_path / "old.npz"
        np.savez(
            path,
            samples=s.samples,
            gaps=s.gaps,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        loaded = OPAQSummary.load(path)
        # Pre-floor archives load with conservative -inf floors.
        assert np.all(np.isneginf(loaded.floors))


class TestRepr:
    def test_concise_repr(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        s = OPAQ(config).summarize(rng.uniform(size=1000))
        text = repr(s)
        assert "OPAQSummary(count=1,000" in text
        assert "samples=100" in text
        assert len(text) < 200  # no raw arrays in the repr
