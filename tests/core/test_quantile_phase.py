"""Tests for the quantile phase: the paper's index formulas and lemmas."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    OPAQ,
    OPAQConfig,
    bounds_arrays,
    lower_bound_index,
    quantile_bounds,
    splitters,
    upper_bound_index,
)
from repro.core.quantile_phase import bounds_at_rank
from repro.errors import EstimationError
from repro.metrics import quantile_rank


class TestPaperFormulas:
    """Formulas (2) and (5) for the divisible case."""

    def test_upper_formula_5(self):
        # j = ceil(psi * s/m); with m/s = 10: psi=55 -> j=6.
        assert upper_bound_index(55, num_runs=4, subrun=10) == 6
        assert upper_bound_index(50, num_runs=4, subrun=10) == 5
        assert upper_bound_index(1, num_runs=4, subrun=10) == 1

    def test_lower_formula_2(self):
        # i = floor((psi - (r-1)(c-1)) / c): psi=100, r=4, c=10 -> (100-27)/10 -> 7.
        assert lower_bound_index(100, num_runs=4, subrun=10) == 7

    def test_lower_clamps_to_zero(self):
        assert lower_bound_index(5, num_runs=10, subrun=10) == 0

    def test_validation(self):
        with pytest.raises(EstimationError):
            upper_bound_index(0, 1, 1)
        with pytest.raises(EstimationError):
            lower_bound_index(1, 0, 1)


class TestQuantileBounds:
    def test_enclosure_uniform(self, uniform_data, sorted_uniform):
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        for phi in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            b = quantile_bounds(summary, phi)
            true = sorted_uniform[b.rank - 1]
            assert b.lower <= true <= b.upper

    def test_lemma_rank_error(self, uniform_data, sorted_uniform):
        """Lemmas 1/2: at most ~n/s elements between either bound and truth."""
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        n, s = uniform_data.size, 500
        budget = summary.guaranteed_rank_error()
        assert budget <= n // s  # divisible case
        for phi in (0.1, 0.5, 0.9):
            b = quantile_bounds(summary, phi)
            assert b.max_below <= budget
            assert b.max_above <= budget
            # And the *actual* displacement respects the declared bound.
            below = b.rank - np.searchsorted(sorted_uniform, b.lower, "right")
            above = np.searchsorted(sorted_uniform, b.upper, "left") - b.rank + 1
            assert below <= b.max_below
            assert above <= max(b.max_above, 0) + 1

    def test_extreme_low_quantile_uses_minimum(self, rng):
        config = OPAQConfig(run_size=100, sample_size=2)
        data = rng.uniform(size=1000)
        summary = OPAQ(config).summarize(data)
        b = quantile_bounds(summary, 0.001)
        assert b.lower == data.min()
        assert b.lower_index == 0

    def test_phi_one_returns_maximum_side(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        data = rng.uniform(size=1000)
        summary = OPAQ(config).summarize(data)
        b = quantile_bounds(summary, 1.0)
        assert b.upper == data.max()

    def test_all_equal_data(self):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(np.full(1000, 7.0))
        b = quantile_bounds(summary, 0.5)
        assert b.lower == b.upper == 7.0
        assert 7.0 in b

    def test_bounds_metadata(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(rng.uniform(size=1000))
        b = quantile_bounds(summary, 0.5)
        assert b.rank == 500
        assert b.max_between == b.max_below + b.max_above
        assert b.width == b.upper - b.lower
        assert b.midpoint == pytest.approx((b.lower + b.upper) / 2)

    def test_invalid_phi(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(rng.uniform(size=1000))
        with pytest.raises(EstimationError):
            quantile_bounds(summary, 0.0)
        with pytest.raises(EstimationError):
            quantile_bounds(summary, 1.5)


class TestBoundsAtRank:
    def test_agrees_with_phi_entry(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(rng.uniform(size=1000))
        via_phi = quantile_bounds(summary, 0.37)
        via_rank = bounds_at_rank(summary, quantile_rank(0.37, 1000))
        assert via_phi.lower == via_rank.lower
        assert via_phi.upper == via_rank.upper

    def test_rank_validation(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(rng.uniform(size=1000))
        with pytest.raises(EstimationError):
            bounds_at_rank(summary, 0)
        with pytest.raises(EstimationError):
            bounds_at_rank(summary, 1001)


class TestBoundsArrays:
    """The vectorised φ-vector kernel must be bit-identical to the
    scalar path — it is what both wire protocols serve from."""

    PHI_GRID = [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0]

    @pytest.mark.parametrize(
        "run_size,sample_size", [(100, 10), (5000, 500), (64, 1), (97, 13)]
    )
    def test_bit_identical_to_scalar_path(self, rng, run_size, sample_size):
        data = rng.normal(size=10_000)
        # Quantised duplicates stress the tie-handling searchsorted sides;
        # ``+ 0.0`` canonicalises the -0.0 that np.round produces (equal
        # zeros tie-break differently between min() and np.minimum, which
        # byte-comparison would flag on the sign bit alone).
        data[::3] = np.round(data[::3]) + 0.0
        config = OPAQConfig(run_size=run_size, sample_size=sample_size)
        summary = OPAQ(config).summarize(data)
        psi, lower, upper, below, above, phis = bounds_arrays(
            summary, self.PHI_GRID
        )
        for i, phi in enumerate(self.PHI_GRID):
            b = quantile_bounds(summary, phi)
            assert psi[i] == b.rank
            # Byte-level equality, not approx: same IEEE-754 doubles.
            assert lower[i].tobytes() == np.float64(b.lower).tobytes()
            assert upper[i].tobytes() == np.float64(b.upper).tobytes()
            assert below[i] == b.max_below
            assert above[i] == b.max_above

    def test_all_equal_data_vectorised(self):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(np.full(1000, 7.0))
        _, lower, upper, _, _, _ = bounds_arrays(summary, [0.25, 0.5, 0.75])
        assert np.all(lower == 7.0) and np.all(upper == 7.0)

    def test_validation(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(rng.uniform(size=1000))
        for bad in ([], [0.0], [1.5], [[0.5]]):
            with pytest.raises(EstimationError):
                bounds_arrays(summary, bad)


class TestSplitters:
    def test_counts_and_order(self, uniform_data):
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        cuts = splitters(summary, 10)
        assert cuts.size == 9
        assert np.all(np.diff(cuts) >= 0)

    def test_which_variants(self, uniform_data):
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        lower = splitters(summary, 4, which="lower")
        upper = splitters(summary, 4, which="upper")
        mid = splitters(summary, 4, which="mid")
        assert np.all(lower <= mid) and np.all(mid <= upper)

    def test_validation(self, uniform_data):
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        with pytest.raises(EstimationError):
            splitters(summary, 1)
        with pytest.raises(EstimationError):
            splitters(summary, 4, which="median")


class TestEnclosureProperty:
    """Hypothesis: the enclosure invariant holds for arbitrary data."""

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=4,
            max_size=500,
        ),
        run_size=st.integers(min_value=4, max_value=100),
        sample_size=st.integers(min_value=1, max_value=20),
        phi_millis=st.integers(min_value=1, max_value=1000),
    )
    def test_lower_true_upper(self, values, run_size, sample_size, phi_millis):
        data = np.array(values, dtype=np.float64)
        sample_size = min(sample_size, run_size)
        config = OPAQConfig(run_size=run_size, sample_size=sample_size)
        summary = OPAQ(config).summarize(data)
        phi = phi_millis / 1000.0
        b = quantile_bounds(summary, phi)
        true = np.sort(data)[b.rank - 1]
        assert b.lower <= true <= b.upper
        # Declared rank-error budgets are honoured too.
        sd = np.sort(data)
        below = b.rank - np.searchsorted(sd, b.lower, "right")
        assert below <= b.max_below
        above = np.searchsorted(sd, b.upper, "left") + 1 - b.rank
        assert above <= b.max_above + 1
