"""Tests for OPAQConfig."""

import pytest

from repro.core import OPAQConfig
from repro.errors import ConfigError
from repro.selection import NumpyPartitionStrategy, SortStrategy


class TestValidation:
    def test_valid(self):
        cfg = OPAQConfig(run_size=1000, sample_size=100)
        assert cfg.num_runs(10_000) == 10
        assert cfg.total_samples(10_000) == 1000

    def test_sample_exceeds_run(self):
        with pytest.raises(ConfigError):
            OPAQConfig(run_size=100, sample_size=200)

    def test_nonpositive(self):
        with pytest.raises(ConfigError):
            OPAQConfig(run_size=0, sample_size=1)
        with pytest.raises(ConfigError):
            OPAQConfig(run_size=10, sample_size=0)

    def test_bad_strategy_fails_eagerly(self):
        with pytest.raises(ConfigError, match="unknown selection strategy"):
            OPAQConfig(run_size=10, sample_size=5, strategy="bogosort")

    def test_strategy_instance(self):
        cfg = OPAQConfig(run_size=10, sample_size=5, strategy=SortStrategy())
        assert isinstance(cfg.selection_strategy(), SortStrategy)

    def test_default_strategy_numpy(self):
        cfg = OPAQConfig(run_size=10, sample_size=5)
        assert isinstance(cfg.selection_strategy(), NumpyPartitionStrategy)

    def test_num_runs_requires_positive_n(self):
        cfg = OPAQConfig(run_size=10, sample_size=5)
        with pytest.raises(ConfigError):
            cfg.num_runs(0)


class TestMemoryConstraint:
    def test_validate_for_ok(self):
        cfg = OPAQConfig(run_size=1000, sample_size=100, memory=3000)
        cfg.validate_for(10_000)  # 10 runs * 100 + 1000 = 2000 <= 3000

    def test_validate_for_violation(self):
        cfg = OPAQConfig(run_size=1000, sample_size=100, memory=1500)
        with pytest.raises(ConfigError):
            cfg.validate_for(10_000)

    def test_no_memory_budget_no_check(self):
        OPAQConfig(run_size=10, sample_size=5).validate_for(10**9)

    def test_for_memory_builds_feasible_config(self):
        cfg = OPAQConfig.for_memory(1_000_000, memory=50_000, sample_size=500)
        cfg.validate_for(1_000_000)
        assert cfg.memory == 50_000


class TestSweepHelpers:
    def test_with_sample_size(self):
        cfg = OPAQConfig(run_size=1000, sample_size=100)
        cfg2 = cfg.with_sample_size(200)
        assert cfg2.sample_size == 200
        assert cfg2.run_size == cfg.run_size
        assert cfg.sample_size == 100  # original untouched
