"""Tests for the OPAQ facade and the one-shot helper."""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig
from repro.errors import ConfigError
from repro.storage import RunReader


class TestSources:
    def test_array_source(self, uniform_data, sorted_uniform):
        config = OPAQConfig(run_size=10_000, sample_size=100)
        [b] = OPAQ(config).estimate(uniform_data, [0.5])
        assert b.lower <= sorted_uniform[b.rank - 1] <= b.upper

    def test_dataset_source(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        config = OPAQConfig(run_size=10_000, sample_size=100)
        summary = OPAQ(config).summarize(ds)
        assert summary.count == uniform_data.size

    def test_reader_source(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        reader = RunReader(ds, run_size=10_000)
        config = OPAQConfig(run_size=10_000, sample_size=100)
        summary = OPAQ(config).summarize(reader)
        assert reader.stats.elements_read == uniform_data.size

    def test_reader_run_size_mismatch(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        reader = RunReader(ds, run_size=5000)
        config = OPAQConfig(run_size=10_000, sample_size=100)
        with pytest.raises(ConfigError, match="differs"):
            OPAQ(config).summarize(reader)

    def test_iterable_of_runs(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        runs = (rng.uniform(size=100) for _ in range(3))
        summary = OPAQ(config).summarize(runs)
        assert summary.count == 300

    def test_2d_array_rejected(self, rng):
        config = OPAQConfig(run_size=10, sample_size=2)
        with pytest.raises(ConfigError):
            OPAQ(config).summarize(rng.uniform(size=(5, 5)))

    def test_memory_budget_enforced_on_source(self, rng):
        config = OPAQConfig(run_size=100, sample_size=50, memory=200)
        with pytest.raises(ConfigError):
            OPAQ(config).summarize(rng.uniform(size=10_000))

    def test_memory_budget_enforced_on_run_iterable(self, rng):
        # Iterable sources have unknowable size up front; the budget is
        # checked against the observed total when the pass completes.
        config = OPAQConfig(run_size=100, sample_size=50, memory=200)
        runs = (rng.uniform(size=100) for _ in range(100))
        with pytest.raises(ConfigError):
            OPAQ(config).summarize(runs)

    def test_2d_run_in_iterable_rejected(self, rng):
        config = OPAQConfig(run_size=10, sample_size=2)
        with pytest.raises(ConfigError, match="one-dimensional"):
            OPAQ(config).summarize(iter([rng.uniform(size=(5, 5))]))

    def test_unsupported_source_rejected(self):
        config = OPAQConfig(run_size=10, sample_size=2)
        with pytest.raises(ConfigError, match="unsupported data source"):
            OPAQ(config).summarize(42)


class TestQuantilesOneShot:
    def test_default_run_size(self, uniform_data, sorted_uniform):
        bounds = OPAQ.quantiles(uniform_data, [0.25, 0.75], sample_size=200)
        for b in bounds:
            assert b.lower <= sorted_uniform[b.rank - 1] <= b.upper

    def test_small_input(self):
        data = np.array([3.0, 1.0, 2.0])
        [b] = OPAQ.quantiles(data, [0.5], sample_size=100)
        assert b.lower <= 2.0 <= b.upper

    def test_dataset_input(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        [b] = OPAQ.quantiles(ds, [0.5], sample_size=100)
        assert ds.count == uniform_data.size

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            OPAQ.quantiles(np.empty(0), [0.5])

    def test_explicit_run_size(self, uniform_data):
        bounds = OPAQ.quantiles(
            uniform_data, [0.5], sample_size=100, run_size=25_000
        )
        assert len(bounds) == 1


class TestBoundAccessors:
    def test_bound_and_bounds(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        opaq = OPAQ(config)
        summary = opaq.summarize(rng.uniform(size=1000))
        single = opaq.bound(summary, 0.5)
        [multi] = opaq.bounds(summary, [0.5])
        assert single.lower == multi.lower

    def test_splitters_facade(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        opaq = OPAQ(config)
        summary = opaq.summarize(rng.uniform(size=1000))
        assert opaq.splitters(summary, 4).size == 3
