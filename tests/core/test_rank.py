"""Tests for rank estimation (paper section 4)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import OPAQ, OPAQConfig, estimate_rank


class TestRankBands:
    def test_band_contains_true_rank(self, uniform_data, sorted_uniform):
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        for value in np.percentile(uniform_data, [1, 10, 50, 90, 99]):
            band = estimate_rank(summary, float(value))
            true = int(np.searchsorted(sorted_uniform, value, side="right"))
            assert band.low <= true <= band.high

    def test_below_minimum(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        data = rng.uniform(1.0, 2.0, size=1000)
        summary = OPAQ(config).summarize(data)
        band = estimate_rank(summary, 0.5)
        assert (band.low, band.high) == (0, 0)
        assert band.phi_low == 0.0

    def test_at_or_above_maximum(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        data = rng.uniform(size=1000)
        summary = OPAQ(config).summarize(data)
        band = estimate_rank(summary, float(data.max()))
        assert band.low == band.high == 1000
        assert band.phi_high == 1.0

    def test_band_width_bounded(self, uniform_data):
        config = OPAQConfig(run_size=5000, sample_size=500)
        summary = OPAQ(config).summarize(uniform_data)
        budget = 2 * summary.guaranteed_rank_error() + summary.subrun_ceil
        for value in np.percentile(uniform_data, [10, 50, 90]):
            band = estimate_rank(summary, float(value))
            assert band.width <= budget

    def test_midpoint_between_bounds(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = OPAQ(config).summarize(rng.uniform(size=1000))
        band = estimate_rank(summary, 0.5)
        assert band.low <= band.midpoint <= band.high

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=10,
            max_size=300,
        ),
        probe=st.floats(min_value=-2e6, max_value=2e6, allow_nan=False),
    )
    def test_property_band_contains_truth(self, values, probe):
        data = np.array(values, dtype=np.float64)
        config = OPAQConfig(run_size=50, sample_size=7)
        summary = OPAQ(config).summarize(data)
        band = estimate_rank(summary, probe)
        true = int(np.searchsorted(np.sort(data), probe, side="right"))
        assert band.low <= true <= band.high


class TestVectorisedHelpers:
    def test_estimate_ranks_matches_scalar(self, rng):
        from repro.core import estimate_rank, estimate_ranks

        config = OPAQConfig(run_size=500, sample_size=50)
        data = rng.uniform(size=5000)
        summary = OPAQ(config).summarize(data)
        probes = np.percentile(data, [5, 50, 95])
        bands = estimate_ranks(summary, probes)
        for probe, band in zip(probes, bands):
            single = estimate_rank(summary, float(probe))
            assert (band.low, band.high) == (single.low, single.high)

    def test_approx_cdf_monotone_and_bounded(self, rng):
        from repro.core import approx_cdf

        config = OPAQConfig(run_size=500, sample_size=50)
        data = rng.uniform(size=5000)
        summary = OPAQ(config).summarize(data)
        probes = np.linspace(data.min(), data.max(), 25)
        cdf = approx_cdf(summary, probes)
        assert np.all(cdf >= 0.0) and np.all(cdf <= 1.0)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == 1.0

    def test_approx_cdf_near_truth(self, rng):
        from repro.core import approx_cdf

        config = OPAQConfig(run_size=1000, sample_size=200)
        data = rng.uniform(size=20_000)
        summary = OPAQ(config).summarize(data)
        sd = np.sort(data)
        probes = np.percentile(data, [10, 50, 90])
        cdf = approx_cdf(summary, probes)
        true = np.searchsorted(sd, probes, side="right") / data.size
        assert np.abs(cdf - true).max() < 0.02
