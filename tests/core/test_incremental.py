"""Tests for incremental OPAQ (paper section 4)."""

import numpy as np
import pytest

from repro.core import OPAQ, IncrementalOPAQ, OPAQConfig
from repro.errors import EstimationError


@pytest.fixture
def config():
    return OPAQConfig(run_size=1000, sample_size=100)


class TestIncrementalOPAQ:
    def test_empty_state(self, config):
        inc = IncrementalOPAQ(config)
        assert inc.count == 0
        assert inc.batches == 0
        with pytest.raises(EstimationError):
            inc.summary
        with pytest.raises(EstimationError):
            inc.bounds(inc.summary, [0.5])

    def test_matches_single_pass(self, config, rng):
        batches = [rng.uniform(size=3000) for _ in range(4)]
        inc = IncrementalOPAQ(config)
        for batch in batches:
            inc.update(batch)
        joint = OPAQ(config).summarize(np.concatenate(batches))
        np.testing.assert_array_equal(
            np.sort(inc.summary.samples), np.sort(joint.samples)
        )
        assert inc.summary.count == joint.count
        assert inc.count == 12_000
        assert inc.batches == 4

    def test_bounds_enclose_truth_over_all_batches(self, config, rng):
        inc = IncrementalOPAQ(config)
        seen = []
        for i in range(5):
            batch = rng.uniform(i, i + 2, size=2000)  # drifting distribution
            seen.append(batch)
            inc.update(batch)
            sd = np.sort(np.concatenate(seen))
            b = inc.bound(inc.summary, 0.5)
            assert b.lower <= sd[b.rank - 1] <= b.upper

    def test_guarantee_tracks_run_count(self, config, rng):
        inc = IncrementalOPAQ(config)
        inc.update(rng.uniform(size=2000))
        g1 = inc.guaranteed_rank_error()
        inc.update(rng.uniform(size=2000))
        g2 = inc.guaranteed_rank_error()
        assert g2 >= g1  # more runs -> (weakly) larger absolute error bound

    def test_update_returns_summary(self, config, rng):
        inc = IncrementalOPAQ(config)
        s = inc.update(rng.uniform(size=500))
        assert s.count == 500


class TestBoundedIncremental:
    def test_max_samples_enforced(self, config, rng):
        inc = IncrementalOPAQ(config, max_samples=400)
        for _ in range(10):
            inc.update(rng.uniform(size=3000))
        assert inc.summary.num_samples <= 400

    def test_bounded_summary_still_encloses(self, config, rng):
        inc = IncrementalOPAQ(config, max_samples=300)
        seen = []
        for _ in range(8):
            batch = rng.uniform(size=2000)
            seen.append(batch)
            inc.update(batch)
        sd = np.sort(np.concatenate(seen))
        for phi in (0.1, 0.5, 0.9):
            b = inc.bound(inc.summary, phi)
            assert b.lower <= sd[b.rank - 1] <= b.upper

    def test_guarantee_stays_proportionate(self, config, rng):
        inc = IncrementalOPAQ(config, max_samples=500)
        for _ in range(20):
            inc.update(rng.uniform(size=5000))
        # The hidden-slack refactor keeps the budget a few percent of n,
        # not ~100% as a naive gap-ceiling bound would give.
        assert inc.guaranteed_rank_error() < 0.05 * inc.count

    def test_max_samples_validation(self, config):
        with pytest.raises(EstimationError):
            IncrementalOPAQ(config, max_samples=1)
