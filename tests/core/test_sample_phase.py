"""Tests for the sample phase."""

import numpy as np
import pytest

from repro.core import OPAQConfig, build_summary, sample_run, scaled_sample_count
from repro.errors import EstimationError
from repro.selection import get_strategy


class TestScaledSampleCount:
    def test_full_run_gets_nominal(self):
        assert scaled_sample_count(1000, 1000, 100) == 100

    def test_half_run_gets_half(self):
        assert scaled_sample_count(500, 1000, 100) == 50

    def test_at_least_one(self):
        assert scaled_sample_count(3, 1000, 100) == 1

    def test_at_most_run_size(self):
        assert scaled_sample_count(5, 1000, 1000) == 5

    def test_empty_run_rejected(self):
        with pytest.raises(EstimationError):
            scaled_sample_count(0, 1000, 100)


class TestSampleRun:
    def test_samples_are_regular(self, rng):
        run = rng.uniform(size=1000)
        samples, gaps, _ = sample_run(run, 10, get_strategy("numpy"))
        expected = np.sort(run)[np.arange(1, 11) * 100 - 1]
        np.testing.assert_array_equal(samples, expected)
        assert np.all(gaps == 100)

    def test_gaps_sum_to_run_size(self, rng):
        run = rng.uniform(size=997)
        samples, gaps, floors = sample_run(run, 10, get_strategy("numpy"))
        assert gaps.sum() == 997
        assert floors[0] == -np.inf
        np.testing.assert_array_equal(floors[1:], samples[:-1])

    def test_last_sample_is_maximum(self, rng):
        run = rng.uniform(size=573)
        samples, _, _ = sample_run(run, 7, get_strategy("numpy"))
        assert samples[-1] == run.max()

    def test_two_dimensional_rejected(self, rng):
        with pytest.raises(EstimationError):
            sample_run(rng.uniform(size=(10, 10)), 2, get_strategy("numpy"))


class TestBuildSummary:
    def test_counts_and_extremes(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        runs = [rng.uniform(size=100) for _ in range(5)]
        summary = build_summary(runs, config)
        assert summary.count == 500
        assert summary.num_runs == 5
        assert summary.num_samples == 50
        full = np.concatenate(runs)
        assert summary.minimum == full.min()
        assert summary.maximum == full.max()

    def test_samples_sorted(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary([rng.uniform(size=100) for _ in range(3)], config)
        assert np.all(np.diff(summary.samples) >= 0)

    def test_ragged_last_run_scaled(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary(
            [rng.uniform(size=100), rng.uniform(size=30)], config
        )
        # 10 samples from the full run, ~3 from the ragged one.
        assert summary.num_samples == 13
        assert summary.count == 130

    def test_empty_runs_skipped(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary(
            [rng.uniform(size=100), np.empty(0), rng.uniform(size=100)], config
        )
        assert summary.num_runs == 2

    def test_no_data_rejected(self):
        config = OPAQConfig(run_size=100, sample_size=10)
        with pytest.raises(EstimationError, match="no data"):
            build_summary([], config)
        with pytest.raises(EstimationError, match="no data"):
            build_summary([np.empty(0)], config)

    def test_strategies_equivalent(self, rng):
        runs = [rng.uniform(size=200) for _ in range(4)]
        summaries = {}
        for name in ("numpy", "sort", "median_of_medians"):
            config = OPAQConfig(run_size=200, sample_size=20, strategy=name)
            summaries[name] = build_summary([r.copy() for r in runs], config)
        base = summaries["numpy"].samples
        for name in ("sort", "median_of_medians"):
            np.testing.assert_array_equal(summaries[name].samples, base)


class TestNaNRejection:
    def test_nan_in_run_rejected(self, rng):
        run = rng.uniform(size=100)
        run[17] = np.nan
        with pytest.raises(EstimationError, match="NaN"):
            sample_run(run, 10, get_strategy("numpy"))

    def test_nan_rejected_through_build(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        bad = rng.uniform(size=200)
        bad[150] = np.nan
        with pytest.raises(EstimationError, match="NaN"):
            build_summary([bad[:100], bad[100:]], config)
