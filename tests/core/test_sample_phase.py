"""Tests for the sample phase."""

import numpy as np
import pytest

from repro.core import OPAQConfig, build_summary, sample_run, scaled_sample_count
from repro.errors import EstimationError
from repro.selection import get_strategy


class TestScaledSampleCount:
    def test_full_run_gets_nominal(self):
        assert scaled_sample_count(1000, 1000, 100) == 100

    def test_half_run_gets_half(self):
        assert scaled_sample_count(500, 1000, 100) == 50

    def test_at_least_one(self):
        assert scaled_sample_count(3, 1000, 100) == 1

    def test_at_most_run_size(self):
        assert scaled_sample_count(5, 1000, 1000) == 5

    def test_empty_run_rejected(self):
        with pytest.raises(EstimationError):
            scaled_sample_count(0, 1000, 100)

    def test_single_element_run(self):
        # A run of one element always yields exactly one sample.
        assert scaled_sample_count(1, 1000, 100) == 1
        assert scaled_sample_count(1, 1, 1) == 1

    def test_run_smaller_than_nominal_s(self):
        # When the run is shorter than the nominal sample count, the
        # scaled count stays proportional and is clamped to the run size.
        assert scaled_sample_count(50, 100, 80) == 40
        assert scaled_sample_count(5, 100, 80) == 4
        assert scaled_sample_count(2, 100, 80) == 2  # round(1.6) clamps up

    def test_rounding_is_to_nearest(self):
        assert scaled_sample_count(25, 100, 10) == 2   # 2.5 banker-rounds
        assert scaled_sample_count(26, 100, 10) == 3
        assert scaled_sample_count(24, 100, 10) == 2

    def test_never_exceeds_run_size(self):
        for run_size in range(1, 40):
            s = scaled_sample_count(run_size, 100, 1000)
            assert 1 <= s <= run_size


class TestSampleRun:
    def test_samples_are_regular(self, rng):
        run = rng.uniform(size=1000)
        samples, gaps, _ = sample_run(run, 10, get_strategy("numpy"))
        expected = np.sort(run)[np.arange(1, 11) * 100 - 1]
        np.testing.assert_array_equal(samples, expected)
        assert np.all(gaps == 100)

    def test_gaps_sum_to_run_size(self, rng):
        run = rng.uniform(size=997)
        samples, gaps, floors = sample_run(run, 10, get_strategy("numpy"))
        assert gaps.sum() == 997
        assert floors[0] == -np.inf
        np.testing.assert_array_equal(floors[1:], samples[:-1])

    def test_last_sample_is_maximum(self, rng):
        run = rng.uniform(size=573)
        samples, _, _ = sample_run(run, 7, get_strategy("numpy"))
        assert samples[-1] == run.max()

    def test_two_dimensional_rejected(self, rng):
        with pytest.raises(EstimationError):
            sample_run(rng.uniform(size=(10, 10)), 2, get_strategy("numpy"))


class TestBuildSummary:
    def test_counts_and_extremes(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        runs = [rng.uniform(size=100) for _ in range(5)]
        summary = build_summary(runs, config)
        assert summary.count == 500
        assert summary.num_runs == 5
        assert summary.num_samples == 50
        full = np.concatenate(runs)
        assert summary.minimum == full.min()
        assert summary.maximum == full.max()

    def test_samples_sorted(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary([rng.uniform(size=100) for _ in range(3)], config)
        assert np.all(np.diff(summary.samples) >= 0)

    def test_ragged_last_run_scaled(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary(
            [rng.uniform(size=100), rng.uniform(size=30)], config
        )
        # 10 samples from the full run, ~3 from the ragged one.
        assert summary.num_samples == 13
        assert summary.count == 130

    def test_last_run_of_one_element(self, rng):
        # The shortest possible ragged tail: one trailing element still
        # becomes one sample and the gap bookkeeping stays exact.
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary(
            [rng.uniform(size=100), rng.uniform(size=1)], config
        )
        assert summary.count == 101
        assert summary.num_samples == 11
        assert summary.gaps.sum() == 101

    def test_run_size_one_runs(self, rng):
        # Degenerate m=1: every run is its own sample; the summary is the
        # whole (sorted) dataset and the guarantee collapses to exact.
        config = OPAQConfig(run_size=1, sample_size=1)
        values = rng.uniform(size=17)
        summary = build_summary([np.array([v]) for v in values], config)
        assert summary.num_samples == 17
        np.testing.assert_array_equal(summary.samples, np.sort(values))
        assert summary.gaps.sum() == 17

    def test_ragged_runs_preserve_gap_invariant(self, rng):
        # Mixed run sizes: gaps always partition the data (G1 of
        # docs/guarantees.md) no matter how ragged the input.
        config = OPAQConfig(run_size=64, sample_size=8)
        sizes = [64, 3, 64, 1, 17, 50]
        summary = build_summary([rng.uniform(size=k) for k in sizes], config)
        assert summary.count == sum(sizes)
        assert summary.gaps.sum() == sum(sizes)
        assert np.all(np.diff(summary.samples) >= 0)

    def test_empty_runs_skipped(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        summary = build_summary(
            [rng.uniform(size=100), np.empty(0), rng.uniform(size=100)], config
        )
        assert summary.num_runs == 2

    def test_no_data_rejected(self):
        config = OPAQConfig(run_size=100, sample_size=10)
        with pytest.raises(EstimationError, match="no data"):
            build_summary([], config)
        with pytest.raises(EstimationError, match="no data"):
            build_summary([np.empty(0)], config)

    def test_strategies_equivalent(self, rng):
        runs = [rng.uniform(size=200) for _ in range(4)]
        summaries = {}
        for name in ("numpy", "sort", "median_of_medians"):
            config = OPAQConfig(run_size=200, sample_size=20, strategy=name)
            summaries[name] = build_summary([r.copy() for r in runs], config)
        base = summaries["numpy"].samples
        for name in ("sort", "median_of_medians"):
            np.testing.assert_array_equal(summaries[name].samples, base)


class TestNaNRejection:
    def test_nan_in_run_rejected(self, rng):
        run = rng.uniform(size=100)
        run[17] = np.nan
        with pytest.raises(EstimationError, match="NaN"):
            sample_run(run, 10, get_strategy("numpy"))

    def test_nan_rejected_through_build(self, rng):
        config = OPAQConfig(run_size=100, sample_size=10)
        bad = rng.uniform(size=200)
        bad[150] = np.nan
        with pytest.raises(EstimationError, match="NaN"):
            build_summary([bad[:100], bad[100:]], config)
