"""Tests for the two-pass exact extension (paper section 4)."""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig, exact_quantiles, refine_exact
from repro.core.quantile_phase import bounds_for
from repro.errors import EstimationError, SinglePassViolation
from repro.metrics import dectile_fractions
from repro.storage import RunReader


class TestExactQuantiles:
    def test_exact_values_match_sort(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        config = OPAQConfig(run_size=10_000, sample_size=100)
        phis = dectile_fractions()
        values, bounds, summary = exact_quantiles(ds, phis, config)
        sd = np.sort(uniform_data)
        expected = np.array([sd[b.rank - 1] for b in bounds])
        np.testing.assert_array_equal(values, expected)

    def test_exactly_two_passes(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        config = OPAQConfig(run_size=10_000, sample_size=100)
        exact_quantiles(ds, [0.5], config)
        # A third pass over the same reader would violate the budget; the
        # function uses exactly two, so a fresh reader still has both.
        reader = RunReader(ds, run_size=10_000, max_passes=2)
        list(reader.runs())
        list(reader.runs())
        with pytest.raises(SinglePassViolation):
            list(reader.runs())

    def test_duplicate_heavy_data(self, dataset_factory, rng):
        data = rng.integers(0, 5, size=20_000).astype(float)
        ds = dataset_factory(data)
        config = OPAQConfig(run_size=4000, sample_size=40)
        values, bounds, _ = exact_quantiles(ds, [0.25, 0.5, 0.75], config)
        sd = np.sort(data)
        expected = np.array([sd[b.rank - 1] for b in bounds])
        np.testing.assert_array_equal(values, expected)

    def test_empty_phis(self, dataset_factory, uniform_data):
        ds = dataset_factory(uniform_data)
        config = OPAQConfig(run_size=10_000, sample_size=100)
        values, bounds, _ = exact_quantiles(ds, [], config)
        assert values.size == 0


class TestRefineExact:
    def test_refine_over_array_runs(self, rng):
        data = rng.uniform(size=5000)
        config = OPAQConfig(run_size=1000, sample_size=50)
        opaq = OPAQ(config)
        summary = opaq.summarize(data)
        bounds = bounds_for(summary, [0.5])
        runs = (data[i : i + 1000] for i in range(0, 5000, 1000))
        [value] = refine_exact(runs, bounds)
        assert value == np.sort(data)[bounds[0].rank - 1]

    def test_changed_data_detected(self, rng):
        data = rng.uniform(size=5000)
        config = OPAQConfig(run_size=1000, sample_size=50)
        summary = OPAQ(config).summarize(data)
        bounds = bounds_for(summary, [0.5])
        # Second "pass" sees different (shifted) data: the window check
        # must notice the inconsistency rather than return garbage.
        other = data + 100.0
        runs = (other[i : i + 1000] for i in range(0, 5000, 1000))
        with pytest.raises(EstimationError):
            refine_exact(runs, bounds)

    def test_shorter_second_pass_detected(self, rng):
        data = rng.uniform(size=5000)
        config = OPAQConfig(run_size=1000, sample_size=50)
        summary = OPAQ(config).summarize(data)
        bounds = bounds_for(summary, [0.99])
        with pytest.raises(EstimationError):
            refine_exact([data[:100]], bounds)
