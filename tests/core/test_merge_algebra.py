"""Merge algebra: shard summaries merged in any order or association
must yield byte-identical quantile bounds.

The snapshotter merges shard summaries in shard-id order for stability,
but the guarantee the service makes is stronger: the *bounds* served to a
client are a pure function of the multiset of shard summaries, not of the
order the merge happened to fold them in.  These tests pin that algebra
(commutativity + associativity at the bounds level) over data with heavy
duplication, where tie-ordering inside the merged sample arrays is the
obvious way for an implementation to go wrong.
"""

import struct

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig, OPAQSummary, quantile_bounds

PHI_GRID = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]


def bounds_fingerprint(summary: OPAQSummary) -> bytes:
    """Byte-exact serialisation of the bounds over the φ grid.

    Floats are packed as raw IEEE-754 doubles so ``-0.0 != 0.0`` and no
    repr rounding can mask a discrepancy.  The fingerprint covers the
    served answer — (rank, e_l, e_u, max_below, max_above) — and not the
    diagnostic ``lower_index``/``upper_index`` fields: those are positions
    inside the merged sample array, and the ordering of *tied* samples in
    that array legitimately depends on merge order even though the values
    and guarantees at every position do not.
    """
    blob = b""
    for phi in PHI_GRID:
        b = quantile_bounds(summary, phi)
        blob += struct.pack(
            "<qddqq", b.rank, b.lower, b.upper, b.max_below, b.max_above
        )
    return blob


def make_shards(rng: np.random.Generator, k: int) -> list[OPAQSummary]:
    """k shard summaries over a partitioned dataset with many duplicates."""
    config = OPAQConfig(run_size=500, sample_size=25)
    opaq = OPAQ(config)
    # Quantised values => heavy cross-shard ties, uneven shard sizes.
    # ``+ 0.0`` canonicalises signed zeros: -0.0 and 0.0 compare equal, so
    # their tie order is merge-order-arbitrary, and byte-identity would
    # fail on the sign bit alone.
    data = np.round(rng.normal(size=20_000) * 4.0) / 4.0 + 0.0
    parts = np.array_split(data, k)
    sizes = rng.integers(1_000, len(parts[0]) + 1, size=k)
    return [opaq.summarize(part[:size]) for part, size in zip(parts, sizes)]


def fold(shards: list[OPAQSummary]) -> OPAQSummary:
    merged = shards[0]
    for s in shards[1:]:
        merged = merged.merge(s)
    return merged


def tree_fold(shards: list[OPAQSummary]) -> OPAQSummary:
    """Pairwise (balanced-tree) association instead of a left fold."""
    level = list(shards)
    while len(level) > 1:
        nxt = [
            level[i].merge(level[i + 1]) if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
        level = nxt
    return level[0]


@pytest.mark.parametrize("k", [2, 3, 4, 8])
def test_merge_order_does_not_change_bounds(rng, k):
    shards = make_shards(rng, k)
    reference = bounds_fingerprint(fold(shards))

    assert bounds_fingerprint(fold(shards[::-1])) == reference

    perm_rng = np.random.default_rng(k)
    for _ in range(5):
        order = perm_rng.permutation(k)
        shuffled = [shards[i] for i in order]
        assert bounds_fingerprint(fold(shuffled)) == reference


@pytest.mark.parametrize("k", [3, 4, 8])
def test_merge_association_does_not_change_bounds(rng, k):
    shards = make_shards(rng, k)
    assert bounds_fingerprint(tree_fold(shards)) == bounds_fingerprint(fold(shards))


def test_merge_commutes_pairwise(rng):
    a, b = make_shards(rng, 2)
    ab, ba = a.merge(b), b.merge(a)
    assert bounds_fingerprint(ab) == bounds_fingerprint(ba)
    # The scalar bookkeeping must agree exactly as well.
    assert ab.count == ba.count
    assert ab.num_runs == ba.num_runs
    assert ab.minimum == ba.minimum and ab.maximum == ba.maximum
    assert ab.guaranteed_rank_error() == ba.guaranteed_rank_error()


@pytest.mark.parametrize("k", [2, 4, 8])
def test_merge_guarantee_accounting(rng, k):
    """Merge-time error accounting: the merged epoch's guarantee is
    bracketed by the per-shard budgets —

        max(per-shard)  <=  merged  <=  sum(per-shard)

    Sharding cannot *improve* on the worst shard's budget (the merged
    summary still has to answer inside that shard's data), and in the
    worst case the budgets compose additively (every shard's uncertainty
    window can land on the same rank).  This is why the service reports
    per-shard and merged guarantees as separate fields
    (``QuantileService.stats()``) instead of pretending the merged number
    is the per-shard one: the degradation as shards rise is real and this
    test pins its envelope.
    """
    shards = make_shards(rng, k)
    per_shard = [s.guaranteed_rank_error() for s in shards]
    merged = fold(shards).guaranteed_rank_error()
    assert max(per_shard) <= merged <= sum(per_shard), (per_shard, merged)


def test_service_stats_reports_both_guarantee_levels(rng):
    """The serving layer surfaces the accounting honestly: stats() carries
    each shard's own budget and the merged epoch's budget separately, and
    they satisfy the merge-accounting envelope."""
    from repro.service import QuantileService, ServiceConfig

    config = ServiceConfig(num_shards=4, run_size=1_000, sample_size=50)
    with QuantileService(config) as service:
        service.ingest(rng.normal(size=40_000))
        service.snapshot()
        stats = service.stats()
    per_shard = [s["guarantee"] for s in stats["per_shard"]]
    assert all(g is not None and g >= 1 for g in per_shard)
    merged = stats["guarantee"]
    assert max(per_shard) <= merged <= sum(per_shard), (per_shard, merged)


def test_compaction_is_deterministic_on_canonical_merge(rng):
    """Compaction is NOT part of the merge algebra: it reads the internal
    tie-layout (gaps/floors), which legitimately depends on fold order.
    That is exactly why the snapshotter always merges in shard-id order —
    the canonical fold — before compacting.  Pin the two properties the
    service actually relies on: (a) compacting the canonical fold is
    deterministic, and (b) compacting *any* fold order still yields valid
    conservative guarantees (bounds drawn from the same sample values)."""
    shards = make_shards(rng, 4)
    canonical = fold(shards)
    ref = bounds_fingerprint(canonical.compact_to(200))
    assert bounds_fingerprint(fold(shards).compact_to(200)) == ref

    for variant in (fold(shards[::-1]), tree_fold(shards)):
        compacted = variant.compact_to(200)
        assert compacted.count == canonical.count
        for phi in PHI_GRID:
            b = quantile_bounds(compacted, phi)
            assert b.lower <= b.upper
            assert b.max_between >= 0
