"""Tests for the scalability metric helpers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel import scaleup_series, sizeup_series, speedup_series


class TestSpeedup:
    def test_linear_case(self):
        times = {1: 8.0, 2: 4.0, 4: 2.0, 8: 1.0}
        s = speedup_series(times)
        np.testing.assert_allclose(s.values, [1, 2, 4, 8])
        np.testing.assert_allclose(s.xs, [1, 2, 4, 8])

    def test_requires_p1(self):
        with pytest.raises(ConfigError):
            speedup_series({2: 1.0})

    def test_requires_positive_base(self):
        with pytest.raises(ConfigError):
            speedup_series({1: 0.0, 2: 1.0})

    def test_as_rows(self):
        s = speedup_series({1: 2.0, 2: 1.0})
        assert s.as_rows() == [(1.0, 1.0), (2.0, 2.0)]


class TestScaleupAndSizeup:
    def test_scaleup_orders_by_p(self):
        s = scaleup_series({4: 1.2, 1: 1.0, 2: 1.1})
        np.testing.assert_allclose(s.xs, [1, 2, 4])
        np.testing.assert_allclose(s.values, [1.0, 1.1, 1.2])

    def test_sizeup_orders_by_size(self):
        s = sizeup_series({200: 2.0, 100: 1.0})
        np.testing.assert_allclose(s.xs, [100, 200])
        np.testing.assert_allclose(s.values, [1.0, 2.0])

    def test_labels(self):
        assert speedup_series({1: 1.0}, label="x").label == "x"
