"""Tests for parallel OPAQ."""

import numpy as np
import pytest

from repro.core import OPAQ, OPAQConfig
from repro.errors import ConfigError
from repro.metrics import dectile_fractions
from repro.parallel import (
    PHASE_GLOBAL_MERGE,
    PHASE_IO,
    PHASE_LOCAL_MERGE,
    PHASE_SAMPLING,
    MachineModel,
    ParallelOPAQ,
    predict_merge_time,
)


@pytest.fixture
def config():
    return OPAQConfig(run_size=2000, sample_size=100)


class TestParallelOPAQ:
    def test_same_samples_as_sequential(self, uniform_data):
        # Run boundaries must coincide: 50k data, 4 procs of 12500, run
        # size 2500 -> the scatter + per-processor runs reproduce the
        # sequential run layout exactly.
        config = OPAQConfig(run_size=2500, sample_size=100)
        seq = OPAQ(config).summarize(uniform_data.copy())
        for method in ("sample", "bitonic"):
            par = ParallelOPAQ(4, config, merge_method=method)
            res = par.run(uniform_data.copy())
            np.testing.assert_array_equal(
                np.sort(res.summary.samples), np.sort(seq.samples)
            )
            assert res.summary.count == seq.count
            assert res.summary.num_runs == seq.num_runs

    def test_bounds_enclose_truth(self, config, uniform_data, sorted_uniform):
        par = ParallelOPAQ(8, config)
        res = par.run(uniform_data.copy())
        for b in res.bounds(dectile_fractions()):
            assert b.lower <= sorted_uniform[b.rank - 1] <= b.upper

    def test_explicit_partitions(self, config, rng):
        parts = [rng.uniform(size=4000) for _ in range(4)]
        par = ParallelOPAQ(4, config)
        res = par.run(parts)
        assert res.summary.count == 16_000

    def test_partition_count_mismatch(self, config, rng):
        par = ParallelOPAQ(4, config)
        with pytest.raises(ConfigError):
            par.run([rng.uniform(size=100)] * 3)

    def test_empty_partition_rejected(self, config, rng):
        par = ParallelOPAQ(2, config)
        with pytest.raises(ConfigError, match="no data"):
            par.run([rng.uniform(size=100), np.empty(0)])

    def test_bitonic_requires_power_of_two(self, config):
        with pytest.raises(ConfigError):
            ParallelOPAQ(3, config, merge_method="bitonic")

    def test_unknown_merge_method(self, config):
        with pytest.raises(ConfigError):
            ParallelOPAQ(2, config, merge_method="radix")

    def test_single_processor(self, config, rng):
        data = rng.uniform(size=8000)
        res = ParallelOPAQ(1, config).run(data)
        assert res.total_time > 0
        assert res.summary.count == 8000

    def test_dataset_partitions(self, config, dataset_factory, rng):
        parts = [dataset_factory(rng.uniform(size=4000)) for _ in range(2)]
        res = ParallelOPAQ(2, config).run(parts)
        assert res.summary.count == 8000


class TestTimingModel:
    def test_phases_present(self, config, uniform_data):
        res = ParallelOPAQ(4, config).run(uniform_data.copy(), phis=[0.5])
        fr = res.phase_fractions()
        for phase in (PHASE_IO, PHASE_SAMPLING, PHASE_LOCAL_MERGE, PHASE_GLOBAL_MERGE):
            assert phase in fr

    def test_io_fraction_near_paper(self, config, uniform_data):
        res = ParallelOPAQ(4, config).run(uniform_data.copy())
        assert 0.40 < res.io_fraction() < 0.62  # paper: ~0.50-0.54

    def test_merges_are_minor(self, config, uniform_data):
        res = ParallelOPAQ(4, config).run(uniform_data.copy())
        fr = res.phase_fractions()
        assert fr[PHASE_LOCAL_MERGE] < 0.1
        assert fr[PHASE_GLOBAL_MERGE] < 0.1

    def test_scaleup_near_flat(self, config, rng):
        per_proc = 10_000
        times = {}
        for p in (1, 2, 4):
            parts = [rng.uniform(size=per_proc) for _ in range(p)]
            times[p] = ParallelOPAQ(p, config).run(parts).total_time
        assert times[4] < 1.25 * times[1]

    def test_predicted_crossover_exists(self):
        """Figure 3's claim at p=8: bitonic wins small, sample wins large."""
        model = MachineModel.sp2()
        small_bit = predict_merge_time(8, 128, model, "bitonic")
        small_sam = predict_merge_time(8, 128, model, "sample")
        big_bit = predict_merge_time(8, 16384, model, "bitonic")
        big_sam = predict_merge_time(8, 16384, model, "sample")
        assert small_bit < small_sam
        assert big_sam < big_bit

    def test_predicted_tracks_simulated(self, rng):
        """The Table 8 formulas and the executed simulation agree within
        a small constant factor."""
        from repro.parallel import SimulatedMachine, sample_merge

        p, size = 8, 4096
        machine = SimulatedMachine(p)
        blocks = [np.sort(rng.uniform(size=size)) for _ in range(p)]
        sample_merge(blocks, machine)
        simulated = machine.elapsed()
        predicted = predict_merge_time(p, size, MachineModel.sp2(), "sample")
        assert 0.2 < simulated / predicted < 5.0

    def test_predict_validation(self):
        with pytest.raises(ConfigError):
            predict_merge_time(4, 100, MachineModel.sp2(), "quantum")
        assert predict_merge_time(1, 100, MachineModel.sp2(), "bitonic") == 0.0


class TestIOOverlap:
    def test_overlap_reduces_time_same_answers(self, config, uniform_data):
        plain = ParallelOPAQ(4, config).run(uniform_data.copy())
        fast = ParallelOPAQ(4, config, overlap_io=True).run(uniform_data.copy())
        assert fast.total_time < plain.total_time
        np.testing.assert_array_equal(
            fast.summary.samples, plain.summary.samples
        )

    def test_overlap_ratio_matches_model(self, config, uniform_data):
        """Total should shrink to ~max(io, sampling)/(io + sampling)."""
        plain = ParallelOPAQ(1, config).run(uniform_data.copy())
        fast = ParallelOPAQ(1, config, overlap_io=True).run(uniform_data.copy())
        fr = plain.phase_fractions()
        expected = max(fr["io"], fr["sampling"])
        assert fast.total_time / plain.total_time == pytest.approx(
            expected, rel=0.15
        )
