"""Tests for the two-level machine model and simulated clocks."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel import MachineModel, SimulatedMachine


class TestMachineModel:
    def test_positive_constants_required(self):
        with pytest.raises(ConfigError):
            MachineModel(mu=0.0)

    def test_cost_formulas(self):
        m = MachineModel(mu=1.0, tau=10.0, beta=2.0, io_per_key=3.0)
        assert m.read_cost(5) == 15.0
        assert m.compute_cost(7) == 7.0
        assert m.message_cost(4) == 18.0

    def test_sp2_defaults_io_sampling_ratio(self):
        """The calibration target: I/O ~52% vs sampling ~45% at s=1024."""
        m = MachineModel.sp2()
        io = m.read_cost(1)
        sampling = m.compute_cost(np.log2(1024))
        frac = io / (io + sampling)
        assert 0.48 < frac < 0.58


class TestSimulatedMachine:
    def test_local_charges_accumulate(self):
        mach = SimulatedMachine(2, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_io(0, 10)
        mach.charge_compute(0, 5, "sampling")
        assert mach.clock(0) == 15.0
        assert mach.clock(1) == 0.0
        assert mach.elapsed() == 15.0

    def test_phase_attribution(self):
        mach = SimulatedMachine(1, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_io(0, 3)
        mach.charge_compute(0, 1, "sampling")
        br = mach.phases(0)
        assert br.times["io"] == 3.0
        assert br.total() == 4.0
        assert br.fraction("io") == pytest.approx(0.75)

    def test_exchange_synchronises(self):
        mach = SimulatedMachine(2, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_io(0, 10)  # proc 0 is ahead
        mach.exchange(0, 1, 4, "global_merge")
        # Both end at max(10, 0) + (1 + 4) = 15.
        assert mach.clock(0) == 15.0
        assert mach.clock(1) == 15.0

    def test_send_receiver_waits(self):
        mach = SimulatedMachine(2, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_io(0, 10)
        mach.send(0, 1, 2, "gm")
        assert mach.clock(0) == 13.0
        assert mach.clock(1) == 13.0  # waited for the sender

    def test_alltoall_costs_and_sync(self):
        model = MachineModel(mu=1, tau=1, beta=1, io_per_key=1)
        mach = SimulatedMachine(2, model)
        mach.charge_io(1, 10)
        out = np.array([[0, 4], [4, 0]])
        mach.alltoall(out, "gm")
        # Start at max clock 10, each pays 2*tau + (4+4)*beta = 10.
        assert mach.clock(0) == 20.0
        assert mach.clock(1) == 20.0

    def test_alltoall_shape_check(self):
        mach = SimulatedMachine(2)
        with pytest.raises(ConfigError):
            mach.alltoall(np.zeros((3, 3)), "gm")

    def test_barrier(self):
        mach = SimulatedMachine(3, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_io(1, 10)
        mach.barrier()
        assert all(mach.clock(i) == 10.0 for i in range(3))

    def test_negative_charge_rejected(self):
        mach = SimulatedMachine(1)
        with pytest.raises(ConfigError):
            mach.charge(0, -1.0, "io")

    def test_proc_bounds(self):
        mach = SimulatedMachine(2)
        with pytest.raises(ConfigError):
            mach.charge_io(2, 1)
        with pytest.raises(ConfigError):
            mach.clock(-1)

    def test_phase_fractions_sum_to_one(self):
        mach = SimulatedMachine(2, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_io(0, 5)
        mach.charge_compute(1, 5, "sampling")
        fr = mach.phase_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)


class TestChargeOverlapped:
    def test_clock_advances_by_max(self):
        mach = SimulatedMachine(1, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_overlapped(0, {"io": 10.0, "sampling": 4.0})
        assert mach.clock(0) == 10.0

    def test_phases_record_busy_time(self):
        mach = SimulatedMachine(1, MachineModel(mu=1, tau=1, beta=1, io_per_key=1))
        mach.charge_overlapped(0, {"io": 10.0, "sampling": 4.0})
        br = mach.phases(0)
        assert br.times["io"] == 10.0
        assert br.times["sampling"] == 4.0
        # Busy time exceeds elapsed — that is the point of overlap.
        assert br.total() > mach.clock(0)

    def test_empty_costs_noop(self):
        mach = SimulatedMachine(1)
        mach.charge_overlapped(0, {})
        assert mach.clock(0) == 0.0

    def test_negative_rejected(self):
        mach = SimulatedMachine(1)
        with pytest.raises(ConfigError):
            mach.charge_overlapped(0, {"io": -1.0})
