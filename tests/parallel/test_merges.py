"""Tests for the two global merge algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.parallel import SimulatedMachine, bitonic_merge, sample_merge


def _blocks(rng, p, size):
    return [np.sort(rng.uniform(size=size)) for _ in range(p)]


class TestBitonicMerge:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_global_sort(self, rng, p):
        blocks = _blocks(rng, p, 64)
        machine = SimulatedMachine(p)
        out, _ = bitonic_merge([b.copy() for b in blocks], machine)
        cat = np.concatenate(out)
        np.testing.assert_array_equal(cat, np.sort(np.concatenate(blocks)))

    def test_block_sizes_preserved_per_slot(self, rng):
        blocks = _blocks(rng, 4, 32)
        machine = SimulatedMachine(4)
        out, _ = bitonic_merge([b.copy() for b in blocks], machine)
        assert [b.size for b in out] == [32, 32, 32, 32]

    def test_payload_alignment(self, rng):
        p = 4
        blocks = _blocks(rng, p, 50)
        payloads = [np.full(50, i, dtype=np.int64) for i in range(p)]
        machine = SimulatedMachine(p)
        out, pays = bitonic_merge(
            [b.copy() for b in blocks], machine, payloads=[q.copy() for q in payloads]
        )
        keys = np.concatenate(out)
        tags = np.concatenate(pays)
        for i in range(p):
            np.testing.assert_array_equal(np.sort(keys[tags == i]), blocks[i])

    def test_power_of_two_required(self, rng):
        machine = SimulatedMachine(3)
        with pytest.raises(ConfigError, match="power-of-two"):
            bitonic_merge(_blocks(rng, 3, 8), machine)

    def test_unsorted_block_rejected(self, rng):
        machine = SimulatedMachine(2)
        blocks = [np.array([2.0, 1.0]), np.array([1.0, 2.0])]
        with pytest.raises(ConfigError, match="sorted"):
            bitonic_merge(blocks, machine)

    def test_block_count_must_match_machine(self, rng):
        machine = SimulatedMachine(4)
        with pytest.raises(ConfigError):
            bitonic_merge(_blocks(rng, 2, 8), machine)

    def test_clock_advances(self, rng):
        machine = SimulatedMachine(4)
        bitonic_merge(_blocks(rng, 4, 128), machine)
        assert machine.elapsed() > 0
        assert machine.phases(0).times.get("global_merge", 0) > 0


class TestSampleMerge:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_global_sort_any_p(self, rng, p):
        blocks = _blocks(rng, p, 64)
        machine = SimulatedMachine(p)
        out, _, expansion = sample_merge([b.copy() for b in blocks], machine)
        cat = np.concatenate(out)
        np.testing.assert_array_equal(cat, np.sort(np.concatenate(blocks)))
        assert expansion >= 1.0

    def test_expansion_bounded_with_oversampling(self, rng):
        p = 8
        blocks = _blocks(rng, p, 2000)
        machine = SimulatedMachine(p)
        _, _, expansion = sample_merge(
            [b.copy() for b in blocks], machine, oversample=64
        )
        assert expansion < 1.5  # the [LLS+93] bucket expansion bound

    def test_payload_alignment(self, rng):
        p = 3
        blocks = _blocks(rng, p, 40)
        payloads = [np.full(40, i, dtype=np.int64) for i in range(p)]
        machine = SimulatedMachine(p)
        out, pays, _ = sample_merge(
            [b.copy() for b in blocks], machine, payloads=[q.copy() for q in payloads]
        )
        keys = np.concatenate(out)
        tags = np.concatenate(pays)
        for i in range(p):
            np.testing.assert_array_equal(np.sort(keys[tags == i]), blocks[i])

    def test_varying_block_sizes(self, rng):
        blocks = [
            np.sort(rng.uniform(size=s)) for s in (10, 200, 0, 77)
        ]
        machine = SimulatedMachine(4)
        out, _, _ = sample_merge([b.copy() for b in blocks], machine)
        cat = np.concatenate(out)
        np.testing.assert_array_equal(cat, np.sort(np.concatenate(blocks)))

    def test_duplicate_heavy_blocks(self, rng):
        blocks = [np.sort(rng.integers(0, 3, size=100).astype(float)) for _ in range(4)]
        machine = SimulatedMachine(4)
        out, _, _ = sample_merge([b.copy() for b in blocks], machine)
        cat = np.concatenate(out)
        np.testing.assert_array_equal(cat, np.sort(np.concatenate(blocks)))

    def test_single_processor_identity(self, rng):
        machine = SimulatedMachine(1)
        block = np.sort(rng.uniform(size=32))
        out, _, expansion = sample_merge([block], machine)
        np.testing.assert_array_equal(out[0], block)
        assert expansion == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                max_size=60,
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_sample_merge_sorts(self, data):
        blocks = [np.sort(np.array(lst, dtype=np.float64)) for lst in data]
        machine = SimulatedMachine(len(blocks))
        out, _, _ = sample_merge([b.copy() for b in blocks], machine)
        cat = np.concatenate(out) if out else np.empty(0)
        np.testing.assert_array_equal(cat, np.sort(np.concatenate(blocks)))
