"""Conformance suite for the real execution backends.

The contract under test (docs/parallel.md): the identical POPAQ program,
run on any backend and either kernel, produces **bit-identical** sample
lists and bounds — equal to each other and to the simulated machine's —
and every failure mode surfaces as a typed
:class:`~repro.errors.ParallelError`, never a hang or a bare
multiprocessing traceback.
"""

import os
import time

import numpy as np
import pytest

from repro.core import OPAQConfig
from repro.errors import ConfigError, ParallelError
from repro.parallel import ParallelOPAQ
from repro.parallel.backends import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    validate_backend,
)
from repro.parallel.backends.process import _pack, _ShmArray, _unpack

REAL_BACKENDS = ("serial", "thread", "process")

#: Distinct values everywhere: ties may legitimately permute *payload
#: rows* between equal keys, which is outside the bitwise contract for
#: arbitrary data but inside it for distinct keys.
_DATA = np.random.default_rng(42).permutation(np.arange(60_000.0))
_PHIS = (0.1, 0.5, 0.9)


def _config(kernel="python"):
    return OPAQConfig(run_size=5_000, sample_size=100, kernel=kernel)


# ----------------------------------------------------------------------
# The determinism contract
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def simulated_reference():
    result = ParallelOPAQ(4, _config()).run(_DATA, _PHIS)
    return result


@pytest.mark.parametrize("backend", REAL_BACKENDS)
@pytest.mark.parametrize("kernel", ["python", "numpy"])
def test_backends_match_the_simulated_machine_bitwise(
    backend, kernel, simulated_reference
):
    result = ParallelOPAQ(4, _config(kernel), backend=backend).run(
        _DATA, _PHIS
    )
    reference = simulated_reference
    assert (
        result.summary.samples.tobytes()
        == reference.summary.samples.tobytes()
    )
    for ours, theirs in zip(result.bounds(_PHIS), reference.bounds(_PHIS)):
        assert (ours.lower, ours.upper) == (theirs.lower, theirs.upper)


def test_backend_answers_enclose_the_truth():
    sorted_data = np.sort(_DATA)
    result = ParallelOPAQ(4, _config("numpy"), backend="process").run(
        _DATA, _PHIS
    )
    for phi, bound in zip(_PHIS, result.bounds(_PHIS)):
        truth = sorted_data[int(np.ceil(phi * sorted_data.size)) - 1]
        assert bound.lower <= truth <= bound.upper


@pytest.mark.parametrize("backend", REAL_BACKENDS)
def test_real_backends_report_measured_phases(backend):
    result = ParallelOPAQ(2, _config(), backend=backend).run(_DATA, _PHIS)
    assert result.backend == backend
    assert len(result.worker_reports) == 2
    measured = result.measured_phase_totals()
    assert set(measured) >= {"io", "sampling", "local_merge"}
    assert result.measured_elapsed() > 0
    fractions = result.measured_phase_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    # The modelled replay exists alongside, phase for phase.
    assert result.total_time > 0
    assert set(result.phase_fractions()) >= {"io", "sampling"}


def test_simulated_runs_measure_nothing():
    result = ParallelOPAQ(2, _config()).run(_DATA, _PHIS)
    assert result.worker_reports is None
    assert result.measured_phase_totals() is None
    assert result.measured_elapsed() is None


# ----------------------------------------------------------------------
# The registry and the Comm contract
# ----------------------------------------------------------------------


def test_registry_knows_all_backends():
    assert set(BACKEND_NAMES) == {"serial", "thread", "process"}
    for name in BACKEND_NAMES:
        assert get_backend(name).name == name
    assert validate_backend("simulated") == "simulated"
    with pytest.raises(ConfigError):
        get_backend("gpu")
    with pytest.raises(ConfigError):
        validate_backend("gpu")


@pytest.mark.parametrize(
    "backend", [SerialBackend(), ThreadBackend(timeout=5.0)]
)
def test_self_sends_are_rejected(backend):
    def worker(comm):
        comm.send(comm.rank, "hello me")

    with pytest.raises(ParallelError, match="itself"):
        backend.run(worker, [(), ()])


def test_out_of_range_peer_is_rejected():
    def worker(comm):
        if comm.rank == 0:
            comm.send(7, "nobody home")

    with pytest.raises(ParallelError, match="only ranks"):
        SerialBackend().run(worker, [(), ()])


def test_fifo_order_per_channel():
    def worker(comm):
        if comm.rank == 1:
            for value in range(5):
                comm.send(0, value)
            return None
        return [comm.recv(1) for _ in range(5)]

    for backend in (SerialBackend(), ThreadBackend(timeout=5.0)):
        results = backend.run(worker, [(), ()])
        assert results[0] == [0, 1, 2, 3, 4]


def test_serial_backend_detects_cyclic_patterns():
    def worker(comm):
        # 0 waits on 1 while 1 waits on 0: unserialisable.
        peer = 1 - comm.rank
        value = comm.recv(peer)
        comm.send(peer, value)

    with pytest.raises(ParallelError, match="cyclic"):
        SerialBackend().run(worker, [(), ()])


def test_serial_backend_reports_missing_message():
    def worker(comm):
        if comm.rank == 0:
            return comm.recv(1)  # rank 1 never sends
        return None

    with pytest.raises(ParallelError, match="without sending"):
        SerialBackend().run(worker, [(), ()])


# ----------------------------------------------------------------------
# Typed failure propagation
# ----------------------------------------------------------------------


def _explode(comm):
    if comm.rank == 1:
        raise ValueError("boom at rank 1")
    comm.barrier()


@pytest.mark.parametrize(
    "backend",
    [SerialBackend(), ThreadBackend(timeout=5.0), ProcessBackend(timeout=15.0)],
    ids=["serial", "thread", "process"],
)
def test_worker_exceptions_become_parallel_errors(backend):
    with pytest.raises(ParallelError, match="ValueError"):
        backend.run(_explode, [(), ()])


def test_thread_backend_reports_the_root_cause_not_the_knock_on():
    # Rank 0 blocks in barrier() and fails *because* rank 1 raised; the
    # reported error must be rank 1's ValueError, not rank 0's broken
    # barrier.
    try:
        ThreadBackend(timeout=5.0).run(_explode, [(), ()])
    except ParallelError as exc:
        assert "ValueError" in str(exc)
        assert "boom at rank 1" in str(exc)
    else:  # pragma: no cover
        pytest.fail("expected ParallelError")


def _die_silently(comm):
    if comm.rank == 1:
        os._exit(3)
    comm.barrier()


def test_process_backend_reports_silent_worker_death():
    with pytest.raises(ParallelError, match="exit code 3"):
        ProcessBackend(timeout=15.0).run(_die_silently, [(), ()])


def _hang(comm):
    if comm.rank == 1:
        time.sleep(30.0)
    comm.recv(1 - comm.rank)


def test_process_backend_times_out_instead_of_hanging():
    start = time.perf_counter()
    with pytest.raises(ParallelError):
        ProcessBackend(timeout=2.0).run(_hang, [(), ()])
    assert time.perf_counter() - start < 25.0


def test_empty_worker_list_is_rejected():
    for backend in (SerialBackend(), ThreadBackend(), ProcessBackend()):
        with pytest.raises(ParallelError, match="at least one"):
            backend.run(lambda comm: None, [])


# ----------------------------------------------------------------------
# The shared-memory transport
# ----------------------------------------------------------------------


def test_pack_round_trips_nested_structures():
    big = np.random.default_rng(0).uniform(size=64)
    small = np.arange(3.0)
    payload = {"big": big, "nested": [(small, big * 2), "text"], "n": 7}
    packed = _pack(payload, threshold=128)  # big crosses, small does not
    assert isinstance(packed["big"], _ShmArray)
    assert isinstance(packed["nested"][0][1], _ShmArray)
    assert packed["nested"][0][0] is small  # under threshold: untouched
    restored = _unpack(packed)
    np.testing.assert_array_equal(restored["big"], big)
    np.testing.assert_array_equal(restored["nested"][0][1], big * 2)
    assert restored["n"] == 7


def test_unpack_of_vanished_segment_is_typed():
    ghost = _ShmArray(name="opaq-test-no-such-segment", shape=(4,), dtype="<f8")
    with pytest.raises(ParallelError, match="vanished"):
        _unpack(ghost)


def test_process_backend_with_tiny_shm_threshold():
    """Force every array through shared memory and still match bitwise."""
    backend = ProcessBackend(timeout=15.0, shm_threshold=1)
    result = ParallelOPAQ(2, _config(), backend=backend).run(_DATA, _PHIS)
    reference = ParallelOPAQ(2, _config()).run(_DATA, _PHIS)
    assert (
        result.summary.samples.tobytes()
        == reference.summary.samples.tobytes()
    )


# ----------------------------------------------------------------------
# Wiring: estimator and service entry points
# ----------------------------------------------------------------------


def test_quantiles_classmethod_takes_backend_and_kernel():
    from repro import OPAQ

    data = np.random.default_rng(5).uniform(size=30_000)
    [direct] = OPAQ.quantiles(data, [0.5], sample_size=100, run_size=5_000)
    [routed] = OPAQ.quantiles(
        data,
        [0.5],
        sample_size=100,
        run_size=5_000,
        kernel="numpy",
        backend="thread",
        num_procs=2,
    )
    truth = np.sort(data)[int(np.ceil(0.5 * data.size)) - 1]
    assert routed.lower <= truth <= routed.upper
    assert direct.lower <= truth <= direct.upper


def test_service_estimate_uses_the_configured_backend():
    from repro.service import QuantileService, ServiceConfig

    config = ServiceConfig(
        num_shards=2, run_size=5_000, sample_size=100, backend="serial"
    )
    data = np.random.default_rng(6).uniform(size=30_000)
    with QuantileService(config) as service:
        [bound] = service.estimate(data, [0.5])
    truth = np.sort(data)[int(np.ceil(0.5 * data.size)) - 1]
    assert bound.lower <= truth <= bound.upper


def test_service_config_rejects_unknown_backend():
    from repro.service import ServiceConfig

    with pytest.raises(ConfigError):
        ServiceConfig(backend="gpu")
