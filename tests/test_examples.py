"""Smoke tests: every shipped example must run clean end to end.

Examples are the documentation users actually execute; each prints its
own ground-truth verification, so "exit code 0 and no 'NO!' in the
output" is a meaningful check, not just an import test.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    # Every example prints its own verification; none may report failure.
    assert "NO!" not in result.stdout
    assert "Traceback" not in result.stderr


def test_quickstart_reports_enclosure(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    # Nine dectiles, all enclosed.
    assert result.stdout.count("yes") >= 9
