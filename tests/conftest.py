"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import DiskDataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def uniform_data(rng) -> np.ndarray:
    """50k uniform keys with some duplicates — the workhorse array."""
    base = rng.uniform(0.0, 1.0e9, size=45_000)
    dups = rng.choice(base, size=5_000, replace=True)
    data = np.concatenate([base, dups])
    rng.shuffle(data)
    return data


@pytest.fixture
def sorted_uniform(uniform_data) -> np.ndarray:
    return np.sort(uniform_data)


@pytest.fixture
def dataset_factory(tmp_path):
    """Create disk datasets in the test's temporary directory."""
    counter = {"n": 0}

    def make(values: np.ndarray) -> DiskDataset:
        counter["n"] += 1
        path = tmp_path / f"ds_{counter['n']}.opaq"
        return DiskDataset.create(path, np.asarray(values, dtype=np.float64))

    return make
