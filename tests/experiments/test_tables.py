"""Shape tests for the table/figure reproduction functions.

These verify the *claims* each table supports, on reduced sizes, without
re-running the heavyweight sweeps (the benchmarks do the full CI-scale
runs and print the tables).
"""

from repro.experiments import (
    figure3,
    opaq_error_report,
    parallel_error_reports,
    table8,
)
from repro.metrics import rera_bound
from repro.parallel import MachineModel, predict_merge_time


class TestErrorRateShapes:
    """The claims behind Tables 3-6."""

    def test_table3_shape_error_halves_with_s(self):
        rows = {
            s: opaq_error_report("uniform", 50_000, sample_size=s)
            for s in (250, 500, 1000)
        }
        means = [rows[s].rera.mean() for s in (250, 500, 1000)]
        assert means[0] > means[1] > means[2]
        # Roughly halving: allow slack for noise.
        assert means[0] / means[1] > 1.4
        assert means[1] / means[2] > 1.4

    def test_table5_shape_error_independent_of_n(self):
        reports = {
            n: opaq_error_report("uniform", n, sample_size=500)
            for n in (20_000, 50_000, 100_000)
        }
        means = [r.rera.mean() for r in reports.values()]
        assert max(means) < rera_bound(500)
        assert max(means) / max(min(means), 1e-9) < 3.0

    def test_table3_shape_zipf_matches_uniform(self):
        u = opaq_error_report("uniform", 50_000, sample_size=500)
        z = opaq_error_report("zipf", 50_000, sample_size=500)
        assert abs(u.rera.mean() - z.rera.mean()) < rera_bound(500)


class TestParallelShapes:
    """The claims behind Tables 9/10."""

    def test_parallel_errors_independent_of_n(self):
        reports = parallel_error_reports(sizes=[20_000, 40_000], p=4)
        for rep in reports.values():
            assert rep.rera_max <= rera_bound(1024) + 1e-9
            assert rep.within_bounds()


class TestTable8AndFigure3:
    def test_table8_renders(self):
        text = table8().render()
        assert "bitonic p=2" in text

    def test_figure3_records_crossover(self):
        fig = figure3()
        # At p=8 the crossover must exist (the paper's headline claim).
        assert fig.paper_reference["crossover_p8"] != "none"

    def test_predicted_monotone_in_size(self):
        model = MachineModel.sp2()
        for method in ("bitonic", "sample"):
            times = [
                predict_merge_time(8, x, model, method)
                for x in (128, 1024, 8192)
            ]
            assert times[0] < times[1] < times[2]
