"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigError
from repro.experiments.ascii_plot import AsciiChart


class TestAsciiChart:
    def test_render_contains_markers_and_legend(self):
        chart = AsciiChart(width=30, height=8, title="demo")
        chart.add_series("up", [1, 2, 3], [1, 2, 3])
        chart.add_series("down", [1, 2, 3], [3, 2, 1])
        text = chart.render()
        assert text.startswith("demo")
        assert "*" in text and "o" in text
        assert "* up" in text and "o down" in text

    def test_axis_labels_show_extremes(self):
        chart = AsciiChart(width=20, height=6)
        chart.add_series("s", [0, 10], [5, 50])
        text = chart.render()
        assert "50" in text and "5" in text
        assert "10" in text and "0" in text

    def test_monotone_series_drawn_monotone(self):
        chart = AsciiChart(width=20, height=10)
        chart.add_series("s", [0, 1, 2, 3], [0, 1, 2, 3])
        rows = [
            line.split("|", 1)[1]
            for line in chart.render().splitlines()
            if "|" in line
        ]
        cols = []
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    cols.append((c, r))
        # Higher column -> lower row index (drawn upward).
        cols.sort()
        row_order = [r for _, r in cols]
        assert row_order == sorted(row_order, reverse=True)

    def test_log_scale(self):
        chart = AsciiChart(width=20, height=6, logy=True)
        chart.add_series("s", [1, 2, 3], [1, 100, 10000])
        text = chart.render()
        assert "1e+04" in text or "10000" in text

    def test_log_scale_rejects_nonpositive(self):
        chart = AsciiChart(width=20, height=6, logy=True)
        chart.add_series("s", [1, 2], [0.0, 1.0])
        with pytest.raises(ConfigError):
            chart.render()

    def test_validation(self):
        with pytest.raises(ConfigError):
            AsciiChart(width=2, height=2)
        chart = AsciiChart(width=20, height=6)
        with pytest.raises(ConfigError):
            chart.render()  # nothing to draw
        with pytest.raises(ConfigError):
            chart.add_series("bad", [1, 2], [1])
        with pytest.raises(ConfigError):
            chart.add_series("empty", [], [])

    def test_too_many_series(self):
        chart = AsciiChart(width=20, height=6)
        for i in range(8):
            chart.add_series(f"s{i}", [0, 1], [0, i])
        with pytest.raises(ConfigError):
            chart.add_series("overflow", [0, 1], [0, 1])

    def test_constant_series(self):
        chart = AsciiChart(width=20, height=6)
        chart.add_series("flat", [0, 1, 2], [5, 5, 5])
        assert "|" in chart.render()

    def test_chaining(self):
        chart = AsciiChart(width=20, height=6)
        assert chart.add_series("a", [0], [0]) is chart
