"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    TableResult,
    full_scale,
    opaq_error_report,
    paper_dataset,
    resolve_n,
    sorted_copy,
)
from repro.metrics import rera_bound, rerl_bound, rern_bound


class TestScale:
    def test_default_ci_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        assert resolve_n(1_000_000) == 100_000

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        assert resolve_n(1_000_000) == 1_000_000

    def test_floor_of_10k(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert resolve_n(20_000) == 10_000


class TestPaperDataset:
    def test_memoised(self):
        a = paper_dataset("uniform", 10_000, seed=1)
        b = paper_dataset("uniform", 10_000, seed=1)
        assert a is b

    def test_read_only(self):
        data = paper_dataset("uniform", 10_000, seed=2)
        with pytest.raises(ValueError):
            data[0] = 1.0

    def test_sorted_copy(self):
        sd = sorted_copy("zipf", 10_000, seed=3)
        assert np.all(np.diff(sd) >= 0)
        assert sd.size == 10_000

    def test_unknown_distribution(self):
        with pytest.raises(ConfigError):
            paper_dataset("cauchy", 100)

    def test_duplicate_share(self):
        data = paper_dataset("uniform", 10_000, seed=4)
        assert 10_000 - np.unique(data).size == 1000


class TestOpaqErrorReport:
    def test_respects_analytic_bounds(self):
        for dist in ("uniform", "zipf"):
            rep = opaq_error_report(dist, 20_000, sample_size=200)
            assert rep.rera_max <= rera_bound(200)
            assert rep.rerl <= rerl_bound(10, 200)
            assert rep.rern <= rern_bound(10, 200)
            assert rep.within_bounds()

    def test_error_halves_with_double_s(self):
        small = opaq_error_report("uniform", 50_000, sample_size=125)
        large = opaq_error_report("uniform", 50_000, sample_size=500)
        assert large.rera.mean() < small.rera.mean()


class TestTableResult:
    def test_render_layout(self):
        t = TableResult(title="T", header=["a", "bb"])
        t.add_row(1, 2.5)
        t.notes.append("hello")
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "1" in lines[3]
        assert lines[-1] == "note: hello"

    def test_render_empty(self):
        t = TableResult(title="T", header=["x"])
        assert "x" in t.render()
