"""Tests for the pluggable selection strategies."""

import numpy as np
import pytest

from repro.errors import ConfigError, EstimationError
from repro.selection import (
    STRATEGY_NAMES,
    FloydRivestStrategy,
    MedianOfMediansStrategy,
    NumpyPartitionStrategy,
    SelectionStrategy,
    SortStrategy,
    get_strategy,
)

ALL = [
    SortStrategy(),
    NumpyPartitionStrategy(),
    MedianOfMediansStrategy(),
    FloydRivestStrategy(seed=3),
]


@pytest.mark.parametrize("strategy", ALL, ids=lambda s: s.name)
class TestAllStrategiesAgree:
    def test_select(self, strategy, rng):
        values = rng.uniform(size=997)
        expected = np.sort(values)
        for rank in (0, 1, 498, 995, 996):
            assert strategy.select(values, rank) == expected[rank]

    def test_multiselect(self, strategy, rng):
        values = rng.uniform(size=1000)
        ranks = [0, 99, 500, 999]
        out = strategy.multiselect(values, ranks)
        assert np.array_equal(out, np.sort(values)[ranks])

    def test_multiselect_with_duplicates(self, strategy, rng):
        values = rng.integers(0, 7, size=700).astype(float)
        ranks = list(range(0, 700, 70))
        out = strategy.multiselect(values, ranks)
        assert np.array_equal(out, np.sort(values)[ranks])

    def test_select_out_of_range(self, strategy, rng):
        with pytest.raises(EstimationError):
            strategy.select(rng.uniform(size=5), 5)

    def test_multiselect_out_of_range(self, strategy, rng):
        with pytest.raises(EstimationError):
            strategy.multiselect(rng.uniform(size=5), [7])


class TestRegistry:
    def test_names(self):
        assert set(STRATEGY_NAMES) == {
            "sort",
            "numpy",
            "median_of_medians",
            "floyd_rivest",
        }

    def test_get_by_name(self):
        assert isinstance(get_strategy("numpy"), NumpyPartitionStrategy)

    def test_instance_passthrough(self):
        inst = SortStrategy()
        assert get_strategy(inst) is inst

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown selection strategy"):
            get_strategy("quicksort")

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            SelectionStrategy()


class TestFloydRivestDeterminism:
    def test_same_seed_same_result(self, rng):
        values = rng.uniform(size=5000)
        a = FloydRivestStrategy(seed=1).multiselect(values, [100, 2500])
        b = FloydRivestStrategy(seed=1).multiselect(values, [100, 2500])
        assert np.array_equal(a, b)
