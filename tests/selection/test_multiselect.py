"""Tests for the recursive multiselect (paper section 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.selection import (
    median_of_medians_select,
    multiselect,
    regular_sample_ranks,
)


class TestRegularSampleRanks:
    def test_divisible_case_matches_paper(self):
        # m = 12, s = 4: 1-based ranks 3, 6, 9, 12 -> 0-based 2, 5, 8, 11.
        ranks = regular_sample_ranks(12, 4)
        assert ranks.tolist() == [2, 5, 8, 11]

    def test_last_sample_is_run_maximum(self):
        for m, s in ((100, 7), (64, 64), (1000, 3)):
            assert regular_sample_ranks(m, s)[-1] == m - 1

    def test_non_divisible_uses_floor_grid(self):
        ranks = regular_sample_ranks(10, 3)
        assert ranks.tolist() == [2, 5, 9]  # floor(10/3)=3, floor(20/3)=6, 10

    def test_sample_size_one(self):
        assert regular_sample_ranks(50, 1).tolist() == [49]

    def test_full_sampling(self):
        assert regular_sample_ranks(5, 5).tolist() == [0, 1, 2, 3, 4]

    def test_invalid_sizes(self):
        with pytest.raises(EstimationError):
            regular_sample_ranks(10, 0)
        with pytest.raises(EstimationError):
            regular_sample_ranks(10, 11)

    def test_gaps_sum_to_run_size(self):
        for m, s in ((100, 7), (1024, 32), (17, 5)):
            ranks = regular_sample_ranks(m, s)
            gaps = np.diff(np.concatenate([[-1], ranks]))
            assert gaps.sum() == m
            assert gaps.min() >= 1


class TestMultiselect:
    def test_matches_sorted_indexing(self, rng):
        values = rng.uniform(size=2000)
        ranks = [0, 10, 999, 1000, 1999]
        result = multiselect(values, ranks, median_of_medians_select)
        assert np.array_equal(result, np.sort(values)[ranks])

    def test_single_rank(self, rng):
        values = rng.uniform(size=100)
        result = multiselect(values, [50], median_of_medians_select)
        assert result[0] == np.sort(values)[50]

    def test_duplicate_ranks(self, rng):
        values = rng.uniform(size=100)
        result = multiselect(values, [5, 5, 5], median_of_medians_select)
        expected = np.sort(values)[5]
        assert np.all(result == expected)

    def test_heavy_duplicate_values(self, rng):
        values = rng.integers(0, 4, size=1000).astype(float)
        ranks = list(range(0, 1000, 100))
        result = multiselect(values, ranks, median_of_medians_select)
        assert np.array_equal(result, np.sort(values)[ranks])

    def test_empty_ranks(self, rng):
        assert multiselect(rng.uniform(size=10), [], median_of_medians_select).size == 0

    def test_unsorted_ranks_rejected(self, rng):
        with pytest.raises(EstimationError):
            multiselect(rng.uniform(size=10), [5, 2], median_of_medians_select)

    def test_out_of_range_ranks_rejected(self, rng):
        with pytest.raises(EstimationError):
            multiselect(rng.uniform(size=10), [10], median_of_medians_select)
        with pytest.raises(EstimationError):
            multiselect(rng.uniform(size=10), [-1], median_of_medians_select)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=400,
        ),
        st.data(),
    )
    def test_property_matches_sorted(self, values, data):
        arr = np.array(values, dtype=np.float64)
        ranks = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=arr.size - 1),
                    min_size=1,
                    max_size=20,
                )
            )
        )
        result = multiselect(arr, ranks, median_of_medians_select)
        assert np.array_equal(result, np.sort(arr)[ranks])
