"""Tests for randomized selection (Floyd & Rivest 1975)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.selection import floyd_rivest_select


class TestFloydRivestSelect:
    def test_matches_sort(self, rng):
        values = rng.uniform(size=10_000)
        expected = np.sort(values)
        for k in (0, 17, 4999, 9999):
            assert floyd_rivest_select(values, k, rng) == expected[k]

    def test_small_input_sorts(self, rng):
        values = np.array([3.0, 1.0, 2.0])
        assert floyd_rivest_select(values, 1, rng) == 2.0

    def test_heavy_duplicates(self, rng):
        values = rng.integers(0, 3, size=20_000).astype(float)
        expected = np.sort(values)
        for k in (0, 10_000, 19_999):
            assert floyd_rivest_select(values, k, rng) == expected[k]

    def test_deterministic_given_seed(self, rng):
        values = rng.uniform(size=5000)
        a = floyd_rivest_select(values, 1234, np.random.default_rng(1))
        b = floyd_rivest_select(values, 1234, np.random.default_rng(1))
        assert a == b

    def test_default_rng_accepted(self, rng):
        values = rng.uniform(size=2000)
        result = floyd_rivest_select(values, 1000)
        assert result == np.sort(values)[1000]

    def test_rank_out_of_range(self):
        with pytest.raises(EstimationError):
            floyd_rivest_select(np.arange(3, dtype=float), 3)

    def test_does_not_mutate(self, rng):
        values = rng.uniform(size=2000)
        copy = values.copy()
        floyd_rivest_select(values, 1000, rng)
        assert np.array_equal(values, copy)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=2000,
        ),
        st.data(),
    )
    def test_property_equals_sorted_index(self, values, data):
        arr = np.array(values, dtype=np.float64)
        rank = data.draw(st.integers(min_value=0, max_value=arr.size - 1))
        result = floyd_rivest_select(arr, rank, np.random.default_rng(7))
        assert result == np.sort(arr)[rank]
