"""Tests for three-way partitioning."""

import numpy as np
from hypothesis import given, strategies as st

from repro.selection import partition_counts, partition_three_way


class TestPartitionThreeWay:
    def test_basic_split(self):
        values = np.array([5.0, 1.0, 3.0, 3.0, 9.0])
        less, n_equal, greater = partition_three_way(values, 3.0)
        assert sorted(less.tolist()) == [1.0]
        assert n_equal == 2
        assert sorted(greater.tolist()) == [5.0, 9.0]

    def test_pivot_absent(self):
        values = np.array([1.0, 2.0, 4.0])
        less, n_equal, greater = partition_three_way(values, 3.0)
        assert less.tolist() == [1.0, 2.0]
        assert n_equal == 0
        assert greater.tolist() == [4.0]

    def test_all_equal(self):
        values = np.full(10, 7.0)
        less, n_equal, greater = partition_three_way(values, 7.0)
        assert less.size == 0
        assert n_equal == 10
        assert greater.size == 0

    def test_empty(self):
        less, n_equal, greater = partition_three_way(np.empty(0), 1.0)
        assert less.size == 0 and n_equal == 0 and greater.size == 0

    def test_does_not_mutate_input(self):
        values = np.array([3.0, 1.0, 2.0])
        copy = values.copy()
        partition_three_way(values, 2.0)
        assert np.array_equal(values, copy)

    @given(
        st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=200),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    def test_property_partition_is_complete(self, values, pivot):
        arr = np.array(values, dtype=np.float64)
        less, n_equal, greater = partition_three_way(arr, pivot)
        assert less.size + n_equal + greater.size == arr.size
        assert np.all(less < pivot)
        assert np.all(greater > pivot)


class TestPartitionCounts:
    def test_counts_match_full_partition(self, rng):
        values = rng.integers(0, 10, size=100).astype(float)
        for pivot in (0.0, 3.0, 9.5):
            less, n_equal, greater = partition_three_way(values, pivot)
            counts = partition_counts(values, pivot)
            assert counts == (less.size, n_equal, greater.size)
