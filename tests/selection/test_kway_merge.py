"""Tests for merging sorted sample lists."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.selection import (
    is_sorted,
    kway_merge,
    merge_two,
    merge_two_with_payload,
)

sorted_list = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=100
).map(sorted)


class TestMergeTwo:
    def test_basic(self):
        out = merge_two(np.array([1.0, 3.0]), np.array([2.0, 4.0]))
        assert out.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_one_empty(self):
        out = merge_two(np.empty(0), np.array([1.0, 2.0]))
        assert out.tolist() == [1.0, 2.0]

    def test_duplicates(self):
        out = merge_two(np.array([1.0, 2.0, 2.0]), np.array([2.0, 3.0]))
        assert out.tolist() == [1.0, 2.0, 2.0, 2.0, 3.0]

    @settings(max_examples=60)
    @given(sorted_list, sorted_list)
    def test_property_equals_sorted_concat(self, a, b):
        out = merge_two(np.array(a), np.array(b))
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))


class TestMergeTwoWithPayload:
    def test_payload_travels_with_keys(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0])
        out, pay = merge_two_with_payload(
            a, np.array([10, 50]), b, np.array([30])
        )
        assert out.tolist() == [1.0, 3.0, 5.0]
        assert pay.tolist() == [10, 30, 50]

    def test_tied_keys_keep_their_own_payload(self):
        a = np.array([2.0, 2.0])
        b = np.array([2.0])
        out, pay = merge_two_with_payload(a, np.array([1, 2]), b, np.array([9]))
        assert out.tolist() == [2.0, 2.0, 2.0]
        assert sorted(pay.tolist()) == [1, 2, 9]


class TestKwayMerge:
    def test_merges_many_lists(self, rng):
        lists = [np.sort(rng.uniform(size=rng.integers(0, 50))) for _ in range(7)]
        out = kway_merge(lists)
        assert np.array_equal(out, np.sort(np.concatenate(lists)))

    def test_empty_input(self):
        assert kway_merge([]).size == 0

    def test_single_list_copied(self):
        src = np.array([1.0, 2.0])
        out = kway_merge([src])
        out[0] = 99.0
        assert src[0] == 1.0

    def test_lists_with_interleaved_duplicates(self):
        lists = [np.array([1.0, 1.0, 2.0]), np.array([1.0, 2.0, 2.0])]
        out = kway_merge(lists)
        assert out.tolist() == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_payloads_three_or_more_lists(self, rng):
        lists, pays = [], []
        for i in range(5):
            keys = np.sort(rng.uniform(size=20))
            lists.append(keys)
            pays.append(np.full(20, i, dtype=np.int64))
        out, out_pay = kway_merge(lists, payloads=pays)
        assert is_sorted(out)
        # Each payload value appears exactly 20 times.
        assert np.bincount(out_pay, minlength=5).tolist() == [20] * 5
        # Keys from list i still pair with payload i.
        for i in range(5):
            np.testing.assert_array_equal(np.sort(out[out_pay == i]), lists[i])

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kway_merge([np.array([1.0])], payloads=[np.array([1, 2])])

    def test_payload_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kway_merge([np.array([1.0])], payloads=[])

    @settings(max_examples=40)
    @given(st.lists(sorted_list, min_size=1, max_size=6))
    def test_property_equals_sorted_concat(self, lists):
        arrays = [np.array(lst) for lst in lists]
        out = kway_merge(arrays)
        expected = np.sort(np.concatenate([a for a in arrays])) if arrays else np.empty(0)
        assert np.array_equal(out, expected)


class TestIsSorted:
    def test_cases(self):
        assert is_sorted(np.array([1.0, 1.0, 2.0]))
        assert not is_sorted(np.array([2.0, 1.0]))
        assert is_sorted(np.empty(0))
        assert is_sorted(np.array([5.0]))
