"""Tests for deterministic selection (Blum et al. 1972)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.selection import median_of_medians_pivot, median_of_medians_select


class TestMedianOfMediansSelect:
    def test_matches_sort_small(self):
        values = np.array([9.0, 1.0, 4.0, 7.0, 2.0])
        expected = np.sort(values)
        for k in range(values.size):
            assert median_of_medians_select(values, k) == expected[k]

    def test_matches_sort_large(self, rng):
        values = rng.uniform(size=5000)
        expected = np.sort(values)
        for k in (0, 1, 2499, 2500, 4998, 4999):
            assert median_of_medians_select(values, k) == expected[k]

    def test_heavy_duplicates(self, rng):
        values = rng.integers(0, 5, size=4000).astype(float)
        expected = np.sort(values)
        for k in (0, 1000, 2000, 3999):
            assert median_of_medians_select(values, k) == expected[k]

    def test_all_equal(self):
        values = np.full(100, 3.3)
        assert median_of_medians_select(values, 50) == 3.3

    def test_single_element(self):
        assert median_of_medians_select(np.array([42.0]), 0) == 42.0

    def test_rank_out_of_range(self):
        values = np.arange(5, dtype=float)
        with pytest.raises(EstimationError):
            median_of_medians_select(values, 5)
        with pytest.raises(EstimationError):
            median_of_medians_select(values, -1)

    def test_does_not_mutate(self, rng):
        values = rng.uniform(size=100)
        copy = values.copy()
        median_of_medians_select(values, 50)
        assert np.array_equal(values, copy)

    def test_sorted_and_reversed_inputs(self):
        asc = np.arange(1000, dtype=float)
        desc = asc[::-1].copy()
        assert median_of_medians_select(asc, 500) == 500.0
        assert median_of_medians_select(desc, 500) == 500.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=300,
        ),
        st.data(),
    )
    def test_property_equals_sorted_index(self, values, data):
        arr = np.array(values, dtype=np.float64)
        rank = data.draw(st.integers(min_value=0, max_value=arr.size - 1))
        assert median_of_medians_select(arr, rank) == np.sort(arr)[rank]


class TestMedianOfMediansPivot:
    def test_pivot_is_reasonably_central(self, rng):
        values = rng.uniform(size=10_000)
        pivot = median_of_medians_pivot(values)
        below = np.count_nonzero(values < pivot)
        # The classic guarantee: at least ~30% on each side.
        assert 0.25 * values.size < below < 0.75 * values.size
