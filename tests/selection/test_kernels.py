"""The numpy kernels against their pure-python oracles, bit for bit.

The ``kernel="numpy"`` switch must be a pure performance decision:
:func:`multiselect_numpy` against the recursive multiselect, and
:func:`merge_sorted_numpy` against the heap k-way merge, over ragged run
sizes, heavy duplicates and mixed-sign zeros — the regimes where a
subtly different tie order or dtype would first show.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sample_phase import sample_run
from repro.errors import ConfigError, EstimationError
from repro.selection import (
    KERNEL_NAMES,
    get_strategy,
    kway_merge,
    merge_sorted_numpy,
    multiselect_numpy,
    regular_sample_ranks,
    validate_kernel,
)

# ----------------------------------------------------------------------
# multiselect_numpy vs the reference selection
# ----------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=200,
    ),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_multiselect_numpy_matches_reference(values, data):
    run = np.asarray(values, dtype=np.float64)
    num_ranks = data.draw(st.integers(min_value=1, max_value=min(8, run.size)))
    ranks = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=run.size - 1),
                min_size=num_ranks,
                max_size=num_ranks,
            )
        )
    )
    reference = get_strategy("sort").multiselect(run, ranks)
    vectorised = multiselect_numpy(run, ranks)
    np.testing.assert_array_equal(reference, vectorised)
    assert vectorised.dtype == np.float64


@given(
    run_size=st.integers(min_value=1, max_value=500),
    sample_count=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_sample_run_is_kernel_invariant_over_ragged_runs(
    run_size, sample_count, seed
):
    """The whole per-run hot path: ragged sizes, any s, both kernels."""
    run = np.random.default_rng(seed).uniform(size=run_size)
    # Duplicate-heavy variant of the same run exercises tie handling.
    duplicated = np.repeat(run[: max(1, run_size // 3)], 3)[:run_size]
    for data in (run, duplicated):
        s = min(sample_count, data.size)
        python = sample_run(data, s, get_strategy("sort"), kernel="python")
        vectorised = sample_run(data, s, get_strategy("sort"), kernel="numpy")
        np.testing.assert_array_equal(python, vectorised)


def test_multiselect_numpy_rejects_bad_ranks():
    values = np.arange(10.0)
    with pytest.raises(EstimationError):
        multiselect_numpy(values, [3, 1])  # decreasing
    with pytest.raises(EstimationError):
        multiselect_numpy(values, [10])  # out of range
    assert multiselect_numpy(values, []).size == 0


def test_multiselect_numpy_permits_duplicate_ranks():
    values = np.asarray([5.0, 1.0, 3.0])
    np.testing.assert_array_equal(
        multiselect_numpy(values, [1, 1, 2]), [3.0, 3.0, 5.0]
    )


# ----------------------------------------------------------------------
# merge_sorted_numpy vs the heap merge
# ----------------------------------------------------------------------


@st.composite
def _sorted_lists(draw):
    """A ragged collection of sorted float64 arrays, duplicates likely."""
    count = draw(st.integers(min_value=0, max_value=6))
    lists = []
    for _ in range(count):
        values = draw(
            st.lists(
                st.one_of(
                    st.integers(min_value=-5, max_value=5).map(float),
                    st.floats(allow_nan=False, allow_infinity=False, width=16),
                    st.sampled_from([0.0, -0.0]),
                ),
                min_size=0,
                max_size=30,
            )
        )
        lists.append(np.sort(np.asarray(values, dtype=np.float64)))
    return lists


@given(lists=_sorted_lists())
@settings(max_examples=150, deadline=None)
def test_merge_kernels_are_bit_identical(lists):
    python = kway_merge(lists, kernel="python")
    vectorised = kway_merge(lists, kernel="numpy")
    # assert_array_equal treats 0.0 == -0.0; the contract is bitwise.
    assert python.tobytes() == vectorised.tobytes()


@given(lists=_sorted_lists())
@settings(max_examples=100, deadline=None)
def test_merge_kernels_carry_payloads_identically(lists):
    """Ties must resolve to the SAME payload row under both kernels."""
    payloads = [
        np.arange(lst.size, dtype=np.int64) + 100 * idx
        for idx, lst in enumerate(lists)
    ]
    keys_py, rows_py = kway_merge(lists, payloads, kernel="python")
    keys_np, rows_np = kway_merge(lists, payloads, kernel="numpy")
    assert keys_py.tobytes() == keys_np.tobytes()
    np.testing.assert_array_equal(rows_py, rows_np)


def test_merge_sorted_numpy_validates_payload_shapes():
    lists = [np.asarray([1.0, 2.0])]
    with pytest.raises(ConfigError):
        merge_sorted_numpy(lists, payloads=[])
    with pytest.raises(ConfigError):
        merge_sorted_numpy(lists, payloads=[np.arange(3)])


def test_kernel_names_and_validation():
    assert set(KERNEL_NAMES) == {"python", "numpy"}
    for name in KERNEL_NAMES:
        assert validate_kernel(name) == name
    with pytest.raises(ConfigError):
        validate_kernel("fortran")


def test_regular_sample_ranks_feed_both_kernels_identically():
    """The exact ranks the sample phase uses, on a ragged final run."""
    for m in (97, 100, 1000, 1003):
        run = np.random.default_rng(m).normal(size=m)
        ranks = regular_sample_ranks(m, min(10, m))
        np.testing.assert_array_equal(
            get_strategy("sort").multiselect(run, ranks),
            multiselect_numpy(run, ranks),
        )
