"""Tests for the ``opaq`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.storage import DiskDataset


@pytest.fixture
def dataset(tmp_path):
    path = tmp_path / "keys.opaq"
    assert (
        main(
            [
                "generate",
                "--dist",
                "uniform",
                "--n",
                "20000",
                "--seed",
                "3",
                "--out",
                str(path),
            ]
        )
        == 0
    )
    return path


class TestGenerateAndInfo:
    def test_generate_writes_dataset(self, dataset):
        ds = DiskDataset.open(dataset)
        assert ds.count == 20_000

    def test_zipf_parameters(self, tmp_path, capsys):
        out = tmp_path / "z.opaq"
        rc = main(
            [
                "generate",
                "--dist",
                "zipf",
                "--zipf-parameter",
                "0.5",
                "--n",
                "5000",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "zipf" in capsys.readouterr().out

    def test_info(self, dataset, capsys):
        assert main(["info", str(dataset)]) == 0
        out = capsys.readouterr().out
        assert "20,000" in out

    def test_info_missing_file(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope.opaq")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSummarizeQueryRank:
    def test_pipeline(self, dataset, tmp_path, capsys):
        summary_path = tmp_path / "s.npz"
        rc = main(
            [
                "summarize",
                str(dataset),
                "--out",
                str(summary_path),
                "--sample-size",
                "200",
                "--run-size",
                "5000",
            ]
        )
        assert rc == 0
        assert "one pass" in capsys.readouterr().out

        assert main(["query", str(summary_path), "--dectiles"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 10  # header + 9 dectiles

        assert main(["query", str(summary_path), "--phi", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "0.500" in out

        # The printed bounds enclose the true median.
        data = np.sort(DiskDataset.open(dataset).read_all())
        lower, upper = out.splitlines()[1].split()[1:3]
        assert float(lower) <= data[9999] <= float(upper)

        assert main(["rank", str(summary_path), "1.0"]) == 0
        assert "rank(1.0)" in capsys.readouterr().out

    def test_memory_flag_derives_run_size(self, dataset, tmp_path):
        rc = main(
            [
                "summarize",
                str(dataset),
                "--out",
                str(tmp_path / "s.npz"),
                "--sample-size",
                "100",
                "--memory",
                "8000",
            ]
        )
        assert rc == 0

    def test_infeasible_memory_reports_error(self, dataset, tmp_path, capsys):
        rc = main(
            [
                "summarize",
                str(dataset),
                "--out",
                str(tmp_path / "s.npz"),
                "--sample-size",
                "1000",
                "--memory",
                "1500",
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExactAndSort:
    def test_exact(self, dataset, capsys):
        rc = main(
            [
                "exact",
                str(dataset),
                "--phi",
                "0.5",
                "--sample-size",
                "200",
                "--run-size",
                "5000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        value = float(out.splitlines()[1].split()[1])
        data = np.sort(DiskDataset.open(dataset).read_all())
        assert value == data[9999]

    def test_sort(self, dataset, tmp_path, capsys):
        out_path = tmp_path / "sorted.opaq"
        rc = main(["sort", str(dataset), str(out_path), "--memory", "6000"])
        assert rc == 0
        result = DiskDataset.open(out_path).read_all()
        assert np.all(np.diff(result) >= 0)


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestInfoAndCompactSummary:
    def test_info_on_summary(self, dataset, tmp_path, capsys):
        summary_path = tmp_path / "s.npz"
        main([
            "summarize", str(dataset), "--out", str(summary_path),
            "--sample-size", "200", "--run-size", "5000",
        ])
        capsys.readouterr()
        assert main(["info", str(summary_path)]) == 0
        out = capsys.readouterr().out
        assert "describes:  20,000 keys" in out
        assert "guarantee:" in out

    def test_compact_roundtrip(self, dataset, tmp_path, capsys):
        summary_path = tmp_path / "s.npz"
        small_path = tmp_path / "small.npz"
        main([
            "summarize", str(dataset), "--out", str(summary_path),
            "--sample-size", "200", "--run-size", "5000",
        ])
        rc = main([
            "compact", str(summary_path),
            "--max-samples", "100", "--out", str(small_path),
        ])
        assert rc == 0
        capsys.readouterr()
        assert main(["query", str(small_path), "--phi", "0.5"]) == 0
        out = capsys.readouterr().out
        data = np.sort(DiskDataset.open(dataset).read_all())
        lower, upper = out.splitlines()[1].split()[1:3]
        assert float(lower) <= data[9999] <= float(upper)


class TestAnalyzeExplain:
    @pytest.fixture
    def catalog(self, tmp_path):
        from repro.storage import TableDataset

        rng = np.random.default_rng(5)
        TableDataset.create(
            tmp_path / "orders",
            {"amount": rng.lognormal(4, 1, 20_000), "qty": rng.uniform(1, 9, 20_000)},
        )
        rc = main([
            "analyze", str(tmp_path / "orders"),
            "--out", str(tmp_path / "catalog"),
            "--sample-size", "200", "--run-size", "5000",
        ])
        assert rc == 0
        return tmp_path / "catalog"

    def test_explain_single_predicate(self, catalog, capsys):
        capsys.readouterr()
        rc = main([
            "explain", str(catalog), "--predicate", "amount:50:200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "guaranteed in" in out

    def test_explain_conjunction(self, catalog, capsys):
        capsys.readouterr()
        rc = main([
            "explain", str(catalog),
            "--predicate", "amount:50:200",
            "--predicate", "qty:1:3",
        ])
        assert rc == 0
        assert "conjunction" in capsys.readouterr().out

    def test_explain_bad_predicate(self, catalog, capsys):
        rc = main(["explain", str(catalog), "--predicate", "amount=5"])
        assert rc == 2
        assert "column:lo:hi" in capsys.readouterr().err


class TestRunCommand:
    def test_run_prints_bounds(self, dataset, capsys):
        rc = main(["run", str(dataset), "--phi", "0.5", "--sample-size", "100"])
        assert rc == 0
        assert "0.500" in capsys.readouterr().out

    def test_run_metrics_out_emits_all_counter_families(
        self, dataset, tmp_path, capsys
    ):
        """The acceptance check: a parallel traced run writes per-phase
        spans plus I/O, comparison, and SPMD message counters, and the
        deterministic counters match the analytic cost model exactly."""
        import json

        metrics = tmp_path / "metrics.json"
        rc = main(
            [
                "run",
                str(dataset),
                "--phi",
                "0.5",
                "--run-size",
                "2000",
                "--sample-size",
                "200",
                "--procs",
                "4",
                "--merge",
                "bitonic",
                "--trace",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "repro.obs/v1"
        counters = doc["counters"]
        # I/O: one pass over all 20k keys of the generated dataset.
        assert counters["io.elements"] == 20_000
        assert counters["io.bytes"] == 20_000 * 8
        # Comparisons: the modelled O(m log s) figure over every run.
        assert counters["selection.comparisons"] > 0
        # SPMD: bitonic p=4 -> S=3 supersteps -> p*S message endpoints.
        # Each processor holds 5000 keys in runs of 2000 -> local lists of
        # rs = 200+200+100 = 500 samples, so p*rs*S keys move in total.
        assert counters["spmd.messages"] == 4 * 3
        assert counters["spmd.keys"] == 4 * 500 * 3
        assert "phase.multiselect" in doc["spans"]
        assert doc["spmd_phases"]["io"] > 0
        err = capsys.readouterr().err
        assert "metrics" in err and "trace:" in err

    def test_run_without_flags_writes_nothing(self, dataset, tmp_path):
        rc = main(["run", str(dataset), "--phi", "0.5"])
        assert rc == 0
        assert list(tmp_path.glob("*.json")) == []

    @pytest.mark.parametrize("engine", ["kll", "gk", "as95"])
    def test_run_alternative_engines(self, dataset, engine, capsys):
        rc = main(
            [
                "run", str(dataset), "--phi", "0.5",
                "--sample-size", "200", "--engine", engine,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.500" in out
        assert f"engine {engine}" in out
        assert "equal-memory" in out

    def test_run_engine_policy_alias(self, dataset, capsys):
        rc = main(
            [
                "run", str(dataset), "--phi", "0.5",
                "--sample-size", "200", "--engine", "smallest-memory",
            ]
        )
        assert rc == 0
        assert "engine gk" in capsys.readouterr().out

    def test_run_default_engine_output_is_unchanged(self, dataset, capsys):
        rc = main(["run", str(dataset), "--phi", "0.5", "--engine", "opaq"])
        assert rc == 0
        assert "engine" not in capsys.readouterr().out

    def test_non_opaq_engine_refuses_parallel_flags(self, dataset, capsys):
        rc = main(
            [
                "run", str(dataset), "--phi", "0.5",
                "--engine", "kll", "--procs", "4",
            ]
        )
        assert rc == 2
        assert "OPAQ-only" in capsys.readouterr().err

    def test_unknown_engine_is_a_config_error(self, dataset, capsys):
        rc = main(["run", str(dataset), "--phi", "0.5", "--engine", "nope"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err


class TestServeEngineFlags:
    """Engine selection fails fast — before any socket is bound."""

    def test_malformed_tenant_engine_pair(self, capsys):
        rc = main(["serve", "--tenant-engine", "acme:kll"])
        assert rc == 2
        assert "TENANT=ENGINE" in capsys.readouterr().err

    def test_unknown_tenancy_engine(self, capsys):
        rc = main(["serve", "--tenancy-engine", "quantum"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unknown_per_tenant_engine(self, capsys):
        rc = main(["serve", "--tenant-engine", "acme=quantum"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err


class TestExperimentCommand:
    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "table99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--version"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert result.stdout.strip() == "1.0.0"
