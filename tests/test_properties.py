"""The paper's lemmas as machine-checked properties.

This module is the heart of the reproduction's correctness story: for
arbitrary data, arbitrary run/sample configurations and arbitrary quantile
fractions, the deterministic guarantees of section 2.2 must hold —

* **Enclosure**: the true φ-quantile value lies in ``[e_l, e_u]``.
* **Lemma 1**: at most ``n/s`` elements between ``e_l`` and the truth.
* **Lemma 2**: at most ``n/s`` elements between the truth and ``e_u``.
* **Lemma 3**: at most ``2n/s`` elements between the bounds.

(The implementation's declared budgets are used — they equal ``n/s`` in
the paper's divisible case and stay within it for ragged layouts.)
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import OPAQ, OPAQConfig, quantile_bounds
from repro.metrics import dectile_fractions


def count_leq(sorted_data: np.ndarray, value: float) -> int:
    return int(np.searchsorted(sorted_data, value, side="right"))


def count_lt(sorted_data: np.ndarray, value: float) -> int:
    return int(np.searchsorted(sorted_data, value, side="left"))


datasets = st.one_of(
    # uniform-ish floats
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=8,
        max_size=600,
    ),
    # heavy duplication
    st.lists(st.sampled_from([1.0, 2.0, 2.0, 3.0, 100.0]), min_size=8, max_size=600),
    # integers (many ties)
    st.lists(st.integers(min_value=0, max_value=9).map(float), min_size=8, max_size=600),
)


@settings(max_examples=120, deadline=None)
@given(
    values=datasets,
    run_size=st.integers(min_value=2, max_value=128),
    sample_size=st.integers(min_value=1, max_value=32),
    phi_permille=st.integers(min_value=1, max_value=1000),
)
def test_lemmas_hold_for_arbitrary_configurations(
    values, run_size, sample_size, phi_permille
):
    data = np.array(values, dtype=np.float64)
    sample_size = min(sample_size, run_size)
    config = OPAQConfig(run_size=run_size, sample_size=sample_size)
    summary = OPAQ(config).summarize(data)
    sd = np.sort(data)
    phi = phi_permille / 1000.0

    b = quantile_bounds(summary, phi)
    true = sd[b.rank - 1]

    # Enclosure.
    assert b.lower <= true <= b.upper

    # Lemma 1: actual gap below, and the declared budget honours n/s.
    gap_below = b.rank - count_leq(sd, b.lower)
    assert gap_below <= b.max_below
    # Lemma 2.
    gap_above = count_lt(sd, b.upper) - b.rank
    assert gap_above <= b.max_above
    # Lemma 3.
    between = count_lt(sd, b.upper) - count_leq(sd, b.lower)
    assert between <= b.max_between

    # The declared budgets themselves stay within the summary guarantee,
    # which in the divisible case is the paper's n/s.
    assert b.max_below <= summary.guaranteed_rank_error()
    assert b.max_above <= summary.guaranteed_rank_error()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_thousands=st.integers(min_value=2, max_value=20),
)
def test_paper_divisible_case_respects_n_over_s(seed, n_thousands):
    """In the paper's exact setting (s | m, m | n) the budget is n/s."""
    n = n_thousands * 1000
    m = 1000
    s = 100
    rng = np.random.default_rng(seed)
    data = rng.uniform(size=n)
    summary = OPAQ(OPAQConfig(run_size=m, sample_size=s)).summarize(data)
    n_over_s = n // s
    assert summary.guaranteed_rank_error() <= n_over_s
    sd = np.sort(data)
    for phi in dectile_fractions():
        b = quantile_bounds(summary, float(phi))
        assert b.max_between <= 2 * n_over_s
        # Realised displacement also within n/s on each side.
        assert b.rank - count_leq(sd, b.lower) <= n_over_s
        assert count_lt(sd, b.upper) - b.rank <= n_over_s


@settings(max_examples=40, deadline=None)
@given(
    values=datasets,
    run_size=st.integers(min_value=2, max_value=64),
    sample_size=st.integers(min_value=1, max_value=16),
)
def test_incremental_merge_preserves_lemmas(values, run_size, sample_size):
    """Merged summaries (section 4) must keep every guarantee."""
    data = np.array(values, dtype=np.float64)
    sample_size = min(sample_size, run_size)
    config = OPAQConfig(run_size=run_size, sample_size=sample_size)
    opaq = OPAQ(config)
    half = data.size // 2
    if half == 0 or data.size - half == 0:
        return
    merged = opaq.summarize(data[:half]).merge(opaq.summarize(data[half:]))
    sd = np.sort(data)
    for phi in (0.25, 0.5, 0.75):
        b = quantile_bounds(merged, phi)
        true = sd[b.rank - 1]
        assert b.lower <= true <= b.upper
        assert b.rank - count_leq(sd, b.lower) <= b.max_below
        assert count_lt(sd, b.upper) - b.rank <= b.max_above


@settings(max_examples=40, deadline=None)
@given(
    values=datasets,
    run_size=st.integers(min_value=2, max_value=64),
    sample_size=st.integers(min_value=1, max_value=16),
    factor=st.integers(min_value=2, max_value=9),
)
def test_compaction_preserves_lemma_structure(values, run_size, sample_size, factor):
    """Compacted summaries (memory-bounded incremental use) must keep the
    enclosure and honour their own (coarsened) budgets."""
    data = np.array(values, dtype=np.float64)
    sample_size = min(sample_size, run_size)
    config = OPAQConfig(run_size=run_size, sample_size=sample_size)
    summary = OPAQ(config).summarize(data).compact(factor)
    assert summary.count == data.size
    assert int(summary.gaps.sum()) == data.size
    sd = np.sort(data)
    for phi in (0.1, 0.5, 0.9, 1.0):
        b = quantile_bounds(summary, phi)
        true = sd[b.rank - 1]
        assert b.lower <= true <= b.upper
        gap_below = b.rank - count_leq(sd, b.lower)
        assert gap_below <= b.max_below
        gap_above = count_lt(sd, b.upper) - b.rank
        assert gap_above <= b.max_above
