"""Tests for the public API surface: exports exist and are documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.selection",
    "repro.storage",
    "repro.workloads",
    "repro.metrics",
    "repro.baselines",
    "repro.parallel",
    "repro.apps",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPublicSurface:
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} must declare __all__"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_module_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_items_documented(self, name):
        """Every exported class and function carries a docstring."""
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{name}.{symbol} is undocumented"
                )


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_quickstart_from_readme(self):
        """The README's quickstart snippet must actually run."""
        import numpy as np

        from repro import OPAQ

        data = np.random.default_rng(0).uniform(size=10_000)
        [median] = OPAQ.quantiles(data, [0.5], sample_size=100)
        assert median.lower <= np.sort(data)[4999] <= median.upper

    def test_estimate_quantiles_deprecated_alias(self):
        import numpy as np

        from repro import OPAQ, estimate_quantiles

        data = np.arange(10_000, dtype=float)
        with pytest.warns(DeprecationWarning, match="OPAQ.quantiles"):
            deprecated = estimate_quantiles(data, [0.5], sample_size=100)
        fresh = OPAQ.quantiles(data, [0.5], sample_size=100)
        assert [(b.lower, b.upper) for b in deprecated] == [
            (b.lower, b.upper) for b in fresh
        ]

    def test_cli_parser_builds(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):  # --help exits cleanly
            parser.parse_args(["--help"])
