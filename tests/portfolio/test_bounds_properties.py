"""Bound soundness as machine-checked properties, for every engine.

The portfolio's one behavioural promise is that a summary's served
bounds never stray further (in true rank) than its own
``guaranteed_rank_error()`` claims — deterministically for OPAQ and GK,
per seeded query for KLL, vacuously for AS95.  Hypothesis drives that
promise across adversarial inputs: heavy duplication, signed zeros,
constant streams, sorted and reversed orders.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.portfolio import ENGINES

from tests.portfolio.conftest import (
    assert_summary_sound,
    bounds_arrays_of,
    enclosure_holds,
)

PHIS = [0.01, 0.25, 0.5, 0.75, 0.99, 1.0]

datasets = st.one_of(
    # uniform-ish floats
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=8,
        max_size=400,
    ),
    # heavy duplication: few distinct values, many repeats
    st.lists(
        st.sampled_from([-2.5, -1.0, -0.0, 0.0, 1.0, 7.25]),
        min_size=8,
        max_size=400,
    ),
    # signed zeros and denormal-ish magnitudes
    st.lists(
        st.sampled_from([-0.0, 0.0, 5e-324, -5e-324, 1e-308]),
        min_size=8,
        max_size=200,
    ),
)

orderings = st.sampled_from(["given", "sorted", "reversed"])


def _arrange(values: list[float], order: str) -> np.ndarray:
    data = np.asarray(values, dtype=np.float64)
    if order == "sorted":
        return np.sort(data)
    if order == "reversed":
        return np.sort(data)[::-1].copy()
    return data


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
@given(values=datasets, order=orderings)
@settings(max_examples=60, deadline=None)
def test_observed_rank_error_within_guarantee(name, values, order):
    data = _arrange(values, order)
    summary = ENGINES[name].make().summarize(data)
    assert_summary_sound(summary, data, PHIS)


@pytest.mark.parametrize(
    "name",
    [n for n, spec in sorted(ENGINES.items()) if spec.guarantee == "deterministic"],
)
@given(values=datasets, order=orderings)
@settings(max_examples=60, deadline=None)
def test_deterministic_engines_enclose_the_exact_quantile(name, values, order):
    data = _arrange(values, order)
    summary = ENGINES[name].make().summarize(data)
    psi, lower, upper, _, _, _ = bounds_arrays_of(summary, PHIS)
    assert enclosure_holds(data, psi, lower, upper)


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_constant_stream_is_answered_exactly(name):
    data = np.full(5_000, 3.25)
    summary = ENGINES[name].make().summarize(data)
    psi, lower, upper, _, _, _ = bounds_arrays_of(summary, PHIS)
    np.testing.assert_array_equal(lower, np.full(len(PHIS), 3.25))
    np.testing.assert_array_equal(upper, np.full(len(PHIS), 3.25))


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_signed_zero_streams_stay_ordered(name):
    """-0.0 == 0.0 compares equal; no engine may emit lower > upper or
    lose the exact extremes over a signed-zero-heavy stream."""
    rng = np.random.default_rng(3)
    data = rng.permutation(
        np.concatenate([np.full(600, -0.0), np.full(600, 0.0), [-1.0, 1.0]])
    )
    summary = ENGINES[name].make().summarize(data)
    assert float(summary.minimum) == -1.0
    assert float(summary.maximum) == 1.0
    psi, lower, upper, _, _, _ = bounds_arrays_of(summary, PHIS)
    assert np.all(lower <= upper)
    assert np.all(lower >= -1.0) and np.all(upper <= 1.0)
