"""Shared helpers of the cross-engine conformance suite.

The portfolio's whole point is that every engine answers the same
surface with engine-specific semantics behind it; these helpers score a
summary's served bounds against exact ground truth using the shared
guarantee convention (true rank distance of any served bound < ``g``,
with ``rank(v)`` = count of elements ``<= v``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quantile_phase import bounds_arrays as _opaq_bounds_arrays


def bounds_arrays_of(summary, phis):
    """Vectorised bounds for any portfolio summary.

    Sketch summaries carry ``bounds_arrays`` themselves; the core
    :class:`~repro.core.OPAQSummary` answers through the free function.
    """
    method = getattr(summary, "bounds_arrays", None)
    if method is not None:
        return method(phis)
    return _opaq_bounds_arrays(summary, phis)


def observed_rank_error(
    data: np.ndarray,
    psi: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> int:
    """Worst true-rank distance of any served bound from its target rank.

    Duplicates credit a bound with the friendliest rank of its value —
    the guarantee is about the *value* served, and any occurrence of
    that value witnesses it.
    """
    ground = np.sort(np.asarray(data, dtype=np.float64))
    rank_lo = np.searchsorted(ground, lower, side="right")
    rank_hi = np.searchsorted(ground, upper, side="left") + 1
    below = np.maximum(psi - rank_lo, 0)
    above = np.maximum(rank_hi - psi, 0)
    return int(max(below.max(), above.max()))


def enclosure_holds(
    data: np.ndarray,
    psi: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> bool:
    """True when every exact phi-quantile lies inside [lower, upper]."""
    ground = np.sort(np.asarray(data, dtype=np.float64))
    exact = ground[np.asarray(psi, dtype=np.int64) - 1]
    return bool(np.all(lower <= exact) and np.all(exact <= upper))


def assert_summary_sound(summary, data: np.ndarray, phis) -> None:
    """The portfolio-wide soundness check for one summary and dataset."""
    psi, lower, upper, max_below, max_above, fractions = bounds_arrays_of(
        summary, phis
    )
    n = int(np.asarray(data).size)
    assert int(summary.count) == n
    guarantee = int(summary.guaranteed_rank_error())
    assert 1 <= guarantee <= n
    observed = observed_rank_error(data, psi, lower, upper)
    assert observed < guarantee, (observed, guarantee)
    assert np.all(lower <= upper)
    assert np.all(psi >= 1) and np.all(psi <= n)
    assert np.all(np.asarray(max_below) >= 0)
    assert np.all(np.asarray(max_above) >= 0)
    assert np.allclose(np.asarray(fractions), np.asarray(phis, dtype=float))
    ground = np.sort(np.asarray(data, dtype=np.float64))
    assert float(summary.minimum) == float(ground[0])
    assert float(summary.maximum) == float(ground[-1])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(19970825)
