"""The registry's per-key contract, engine by engine.

``EngineSpec.key_state(epsilon, max_samples, seed)`` builds the fold
state the multi-tenant registry holds per key.  Whatever the engine, the
state answers one interface (absorb / count / memory_footprint /
compactions / guaranteed_rank_error / bounds_arrays / save); engines
with a real guarantee must additionally keep the served bound within the
key's epsilon contract ``(g - 1) <= epsilon * count`` after every fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.portfolio import ENGINES

EPSILON = 0.01
MAX_SAMPLES = 256

#: Engines whose key state is expected to honour the epsilon contract
#: (deterministically or per seeded query); as95 is exempt by design.
CONTRACT_ENGINES = [n for n, s in sorted(ENGINES.items()) if s.guarantee != "none"]


def _chunks(rng, count=40, size=1_500):
    for _ in range(count):
        yield np.sort(rng.normal(size=size))


@pytest.mark.parametrize("name", CONTRACT_ENGINES)
def test_epsilon_contract_holds_after_every_fold(name, rng):
    state = ENGINES[name].key_state(EPSILON, MAX_SAMPLES, seed=7)
    total = 0
    for chunk in _chunks(rng):
        state.absorb(chunk)
        total += chunk.size
        assert state.count == total
        g = state.guaranteed_rank_error()
        assert g - 1 <= EPSILON * total, (name, total, g)


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_key_state_answers_the_uniform_interface(name, rng, tmp_path):
    state = ENGINES[name].key_state(EPSILON, MAX_SAMPLES, seed=3)
    data = np.sort(rng.normal(size=6_000))
    state.absorb(data)
    assert state.count == data.size
    assert state.memory_footprint > 0
    assert state.compactions >= 0
    phis = [0.1, 0.5, 0.9]
    psi, lower, upper, max_below, max_above, fractions = state.bounds_arrays(
        phis
    )
    assert psi.shape == (3,)
    assert np.all(lower <= upper)
    path = tmp_path / "state.npz"
    state.save(path)
    restored = ENGINES[name].load(path)
    assert restored.count == data.size


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_restored_key_state_resumes_folding(name, rng, tmp_path):
    spec = ENGINES[name]
    state = spec.key_state(EPSILON, MAX_SAMPLES, seed=5)
    state.absorb(np.sort(rng.normal(size=5_000)))
    compactions = state.compactions
    path = tmp_path / "spilled.npz"
    state.save(path)

    resumed = spec.restored_key_state(
        spec.load(path),
        compactions,
        epsilon=EPSILON,
        max_samples=MAX_SAMPLES,
    )
    assert resumed.count == 5_000
    assert resumed.compactions == compactions
    resumed.absorb(np.sort(rng.normal(size=5_000)))
    assert resumed.count == 10_000
    if spec.guarantee != "none":
        g = resumed.guaranteed_rank_error()
        assert g - 1 <= EPSILON * resumed.count


def test_opaq_key_state_compaction_is_epsilon_gated(rng):
    """The historical registry behaviour, preserved through the move to
    the portfolio: compaction backs off (retains more samples) rather
    than breach the key's epsilon."""
    tight = ENGINES["opaq"].key_state(1e-6, 4, seed=0)
    data = np.sort(rng.normal(size=2_000))
    tight.absorb(data)
    # Epsilon of 1e-6 over 2k elements forbids any lossy compaction.
    assert tight.guaranteed_rank_error() == 1
    assert tight.compactions == 0
    assert tight.memory_footprint == 3 * data.size

    loose = ENGINES["opaq"].key_state(0.05, 4, seed=0)
    loose.absorb(data)
    assert loose.compactions == 1
    assert loose.memory_footprint < 3 * data.size
    assert loose.guaranteed_rank_error() - 1 <= 0.05 * data.size
