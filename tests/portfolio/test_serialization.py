"""Versioned ``.npz`` archives: round trips, magics, version gates.

Every engine's summary persists with the OPAQSUM discipline — named
arrays plus a ``meta`` JSON blob carrying a per-engine magic and a
format version — so a mixed-engine spill directory fails loudly instead
of mis-parsing a foreign archive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.portfolio import ENGINES

from tests.portfolio.conftest import bounds_arrays_of

PHIS = [0.05, 0.25, 0.5, 0.75, 0.95, 1.0]


def _summary(name: str, n: int = 12_000):
    data = np.random.default_rng(11).normal(size=n)
    return ENGINES[name].make().summarize(data)


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_round_trip_preserves_answers(name, tmp_path):
    summary = _summary(name)
    path = tmp_path / f"{name}.npz"
    summary.save(path)
    restored = ENGINES[name].load(path)
    assert restored.count == summary.count
    assert float(restored.minimum) == float(summary.minimum)
    assert float(restored.maximum) == float(summary.maximum)
    assert restored.guaranteed_rank_error() == summary.guaranteed_rank_error()
    for u, v in zip(
        bounds_arrays_of(restored, PHIS), bounds_arrays_of(summary, PHIS)
    ):
        np.testing.assert_array_equal(u, v)


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_load_suffixes_npz_like_the_core(name, tmp_path):
    summary = _summary(name, n=2_000)
    bare = tmp_path / "summary"
    summary.save(bare)
    restored = ENGINES[name].load(bare)
    assert restored.count == summary.count


@pytest.mark.parametrize("name", sorted(ENGINES), ids=sorted(ENGINES))
def test_missing_file_raises_data_error(name, tmp_path):
    with pytest.raises(DataError, match="does not exist"):
        ENGINES[name].load(tmp_path / "nope.npz")


def test_cross_engine_magic_mismatch_fails_loudly(tmp_path):
    """Loading one engine's archive as another engine's summary names
    both magics — the exact failure a mixed spill directory would hit."""
    names = sorted(ENGINES)
    paths = {}
    for name in names:
        paths[name] = tmp_path / f"{name}.npz"
        _summary(name, n=2_000).save(paths[name])
    for writer in names:
        for reader in names:
            if writer == reader:
                continue
            with pytest.raises(DataError):
                ENGINES[reader].load(paths[writer])


@pytest.mark.parametrize(
    "name", [n for n in sorted(ENGINES) if n != "opaq"]
)
def test_future_format_version_is_rejected(name, tmp_path):
    summary = _summary(name, n=2_000)
    path = tmp_path / "v999.npz"
    summary.save(path)
    # Rewrite the meta blob with a version this build does not read.
    import json

    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files if k != "meta"}
        meta = json.loads(bytes(archive["meta"].tobytes()).decode())
    meta["format"] = 999
    np.savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **arrays,
    )
    with pytest.raises(DataError, match="format version"):
        ENGINES[name].load(path)


def test_kll_rng_state_survives_the_round_trip(tmp_path):
    """A restored KLL sketch resumes its RNG stream: feeding the same
    continuation to the original and the restored copy produces
    bit-identical answers (what makes spill/restore deterministic)."""
    rng = np.random.default_rng(23)
    head, tail = rng.normal(size=30_000), rng.normal(size=30_000)
    engine = ENGINES["kll"].make(k=64)  # small k: plenty of compactions
    original = engine.summarize(head)
    assert original.compactions > 0
    path = tmp_path / "kll.npz"
    original.save(path)
    restored = ENGINES["kll"].load(path)

    original.absorb(tail)
    restored.absorb(tail)
    assert restored.count == original.count
    assert restored.compactions == original.compactions
    for u, v in zip(
        bounds_arrays_of(restored, PHIS), bounds_arrays_of(original, PHIS)
    ):
        np.testing.assert_array_equal(u, v)
