"""Every engine behind the same surface: the cross-engine contract.

Each :class:`~repro.portfolio.EngineSpec` in :data:`~repro.portfolio.ENGINES`
carries machine-readable claims (guarantee kind, mergeability, merge
commutativity, archive magic).  This module asserts each claim against
the implementation, so ``docs/portfolio.md``'s catalogue — generated from
the same fields — cannot drift from the code.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuantileBounds, QuantileEstimator
from repro.errors import ConfigError, EstimationError
from repro.portfolio import ENGINES, ENGINE_POLICIES, make_engine, resolve_engine

from tests.portfolio.conftest import assert_summary_sound, bounds_arrays_of

PHIS = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]

pytestmark = pytest.mark.parametrize(
    "name", sorted(ENGINES), ids=sorted(ENGINES)
)


def _data(n: int = 20_000) -> np.ndarray:
    return np.random.default_rng(7).normal(size=n)


def test_engine_satisfies_the_estimator_protocol(name):
    engine = ENGINES[name].make()
    assert isinstance(engine, QuantileEstimator)


def test_summarize_bounds_bound_estimate_agree(name):
    engine = ENGINES[name].make()
    data = _data()
    summary = engine.summarize(data)
    rows = engine.bounds(summary, PHIS)
    assert len(rows) == len(PHIS)
    assert all(isinstance(row, QuantileBounds) for row in rows)
    single = engine.bound(summary, 0.5)
    median = rows[PHIS.index(0.5)]
    assert (single.lower, single.upper) == (median.lower, median.upper)
    # estimate() == summarize() + bounds() for a fresh engine (KLL's RNG
    # is owned by the summary, so two summaries from one seeded engine
    # behave identically).
    direct = ENGINES[name].make().estimate(data, PHIS)
    assert [(r.lower, r.upper) for r in direct] == [
        (r.lower, r.upper) for r in rows
    ]


def test_summary_duck_surface_is_sound(name):
    data = _data()
    summary = ENGINES[name].make().summarize(data)
    assert_summary_sound(summary, data, PHIS)
    assert summary.memory_footprint > 0
    # OPAQ tracks compactions on its per-key fold state, not the summary.
    assert getattr(summary, "compactions", 0) >= 0


def test_guarantee_claim_matches_engine(name):
    spec = ENGINES[name]
    engine = spec.make()
    assert engine.name == name
    assert engine.guarantee_kind == spec.guarantee
    summary = engine.summarize(_data())
    if spec.guarantee == "none":
        # Stated honestly: the vacuous bound, the whole count.
        assert summary.guaranteed_rank_error() == summary.count
    else:
        assert summary.guaranteed_rank_error() < summary.count


def test_mergeable_claim_matches_summary(name):
    spec = ENGINES[name]
    engine = spec.make()
    a, b = np.split(_data(), 2)
    first, second = engine.summarize(a), engine.summarize(b)
    if not spec.mergeable:
        with pytest.raises(EstimationError):
            first.merge(second)
        return
    merged = first.merge(second)
    assert merged.count == a.size + b.size
    data = np.concatenate([a, b])
    assert_summary_sound(merged, data, PHIS)


def test_merge_commutes_claim(name):
    spec = ENGINES[name]
    if not spec.mergeable:
        pytest.skip("engine does not merge at all")
    engine = spec.make()
    a, b = np.split(_data(4_000), 2)
    ab = engine.summarize(a).merge(engine.summarize(b))
    ba = engine.summarize(b).merge(engine.summarize(a))
    if spec.merge_commutes:
        for u, v in zip(bounds_arrays_of(ab, PHIS), bounds_arrays_of(ba, PHIS)):
            np.testing.assert_array_equal(u, v)
    # Non-commuting engines make no ordering promise; both orders must
    # still be sound.
    data = np.concatenate([a, b])
    assert_summary_sound(ab, data, PHIS)
    assert_summary_sound(ba, data, PHIS)


def test_for_budget_respects_the_slot_budget(name):
    budget = 900
    n = 30_000
    engine = ENGINES[name].for_budget(budget, n_hint=n)
    summary = engine.summarize(_data(n))
    assert summary.memory_footprint <= budget
    assert summary.count == n


def test_resolve_engine_and_policies(name):
    assert resolve_engine(name) == name
    engine = make_engine(name)
    assert engine.name == name
    for policy, target in ENGINE_POLICIES.items():
        assert resolve_engine(policy) == target
    with pytest.raises(ConfigError, match="unknown engine"):
        resolve_engine("quantum")
