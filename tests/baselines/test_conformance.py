"""Uniform-interface conformance for every streaming baseline.

The comparison harness relies on all one-pass estimators behaving
identically at the interface level: construct with no arguments, absorb
chunks via ``update``, answer ``query``/``query_many``, report ``n`` and a
``memory_footprint``, and fail loudly when queried before any data.
"""

import numpy as np
import pytest

from repro.baselines import (
    STREAMING_BASELINES,
    StreamingQuantileEstimator,
    make_baseline,
)
from repro.errors import ConfigError, EstimationError

NAMES = sorted(STREAMING_BASELINES)


@pytest.mark.parametrize("name", NAMES)
class TestStreamingConformance:
    def test_registry_name_matches_class(self, name):
        cls = STREAMING_BASELINES[name]
        assert cls.name == name
        assert issubclass(cls, StreamingQuantileEstimator)

    def test_constructs_with_defaults(self, name):
        est = make_baseline(name)
        assert est.n == 0
        # Footprint may legitimately be 0 before data (GK01 holds no
        # tuples yet) but must never be negative.
        assert est.memory_footprint >= 0

    def test_query_before_data_raises(self, name):
        est = make_baseline(name)
        with pytest.raises(EstimationError):
            est.query(0.5)

    def test_update_then_query(self, name, rng):
        est = make_baseline(name)
        data = rng.uniform(size=5000)
        for i in range(0, data.size, 1000):
            est.update(data[i : i + 1000])
        assert est.n == data.size
        assert est.memory_footprint > 0
        estimate = est.query(0.5)
        # Point estimates carry no guarantee, but the uniform [0, 1]
        # median must land well inside the support for every method.
        assert 0.2 <= estimate <= 0.8

    def test_query_many_matches_query(self, name, rng):
        est = make_baseline(name)
        est.update(rng.uniform(size=4000))
        # Dectiles: the one query set every estimator answers (P2 only
        # tracks its configured fractions, which default to the dectiles).
        phis = [0.1, 0.5, 0.9]
        many = est.query_many(phis)
        assert many.shape == (3,)
        assert list(many) == [est.query(phi) for phi in phis]

    def test_empty_chunk_is_noop(self, name):
        est = make_baseline(name)
        est.update(np.empty(0))
        assert est.n == 0

    def test_2d_chunk_rejected(self, name, rng):
        est = make_baseline(name)
        with pytest.raises(ConfigError):
            est.update(rng.uniform(size=(4, 4)))


def test_make_baseline_unknown_name():
    with pytest.raises(ConfigError, match="unknown baseline"):
        make_baseline("no-such-estimator")


def test_make_baseline_forwards_kwargs():
    est = make_baseline("random_sampling", capacity=17)
    assert est.memory_footprint == 17
