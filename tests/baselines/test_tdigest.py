"""Tests for the t-digest sketch."""

import numpy as np
import pytest

from repro.baselines import TDigest, consume
from repro.errors import ConfigError


def rank_err(sd, value, phi):
    return abs(np.searchsorted(sd, value) - phi * sd.size)


class TestTDigest:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TDigest(compression=5)
        with pytest.raises(ConfigError):
            TDigest(buffer_size=0)

    def test_tiny_stream_exactish(self, rng):
        data = rng.uniform(size=20)
        td = consume(TDigest(compression=100), data)
        assert abs(td.query(0.5) - np.median(data)) < np.ptp(data)

    def test_uniform_accuracy(self, rng):
        data = rng.uniform(size=100_000)
        td = consume(TDigest(compression=200), data, run_size=10_000)
        sd = np.sort(data)
        for phi in (0.1, 0.5, 0.9):
            assert rank_err(sd, td.query(phi), phi) < 0.005 * data.size

    def test_tail_accuracy_tighter_than_middle(self, rng):
        """The defining t-digest property: relative rank accuracy."""
        data = rng.uniform(size=200_000)
        td = consume(TDigest(compression=100), data, run_size=20_000)
        sd = np.sort(data)
        tail = max(
            rank_err(sd, td.query(p), p) for p in (0.001, 0.01, 0.99, 0.999)
        )
        middle = max(rank_err(sd, td.query(p), p) for p in (0.4, 0.5, 0.6))
        assert tail <= middle + 50

    def test_extremes_anchored(self, rng):
        data = rng.uniform(size=10_000)
        td = consume(TDigest(compression=50), data)
        assert td.query(1e-9) >= data.min() - 1e-12
        assert td.query(1.0) <= data.max() + 1e-12

    def test_compression_bounds_centroids(self, rng):
        data = rng.uniform(size=200_000)
        td = consume(TDigest(compression=100), data, run_size=20_000)
        td.query(0.5)  # forces a final compression
        assert td.centroids < 800

    def test_skewed_data(self, rng):
        data = rng.lognormal(0.0, 2.0, size=50_000)
        td = consume(TDigest(compression=200), data, run_size=5000)
        sd = np.sort(data)
        assert rank_err(sd, td.query(0.99), 0.99) < 0.01 * data.size

    def test_duplicates(self, rng):
        data = rng.integers(0, 10, size=50_000).astype(float)
        td = consume(TDigest(compression=100), data, run_size=5000)
        q = td.query(0.5)
        sd = np.sort(data)
        assert sd[0] <= q <= sd[-1]

    def test_memory_footprint_positive(self, rng):
        td = consume(TDigest(compression=50), rng.uniform(size=1000))
        assert td.memory_footprint > 0
