"""Tests for the KLL sketch."""

import numpy as np
import pytest

from repro.baselines import KLLSketch, consume
from repro.errors import ConfigError


class TestKLLSketch:
    def test_validation(self):
        with pytest.raises(ConfigError):
            KLLSketch(k=4)

    def test_small_stream_exactish(self, rng):
        data = rng.uniform(size=100)
        kll = consume(KLLSketch(k=256, seed=0), data)
        # Nothing compacted yet: exact answers.
        assert kll.query(0.5) == np.sort(data)[49]

    def test_uniform_accuracy(self, rng):
        data = rng.uniform(size=200_000)
        kll = consume(KLLSketch(k=256, seed=1), data, run_size=20_000)
        sd = np.sort(data)
        worst = max(
            abs(np.searchsorted(sd, kll.query(p)) - p * data.size)
            for p in np.arange(0.1, 1.0, 0.1)
        )
        # ~1.7 n/k one-sigma; allow 3x.
        assert worst < 3 * 1.7 * data.size / 256

    def test_memory_sublinear(self, rng):
        data = rng.uniform(size=500_000)
        kll = consume(KLLSketch(k=200, seed=2), data, run_size=50_000)
        assert kll.memory_footprint < 5000
        assert kll.num_levels > 5

    def test_deterministic_given_seed(self, rng):
        data = rng.uniform(size=50_000)
        a = consume(KLLSketch(k=64, seed=7), data, run_size=5000).query(0.5)
        b = consume(KLLSketch(k=64, seed=7), data, run_size=5000).query(0.5)
        assert a == b

    def test_sorted_arrival(self, rng):
        data = np.sort(rng.uniform(size=100_000))
        kll = consume(KLLSketch(k=256, seed=3), data, run_size=10_000)
        sd = data
        err = abs(np.searchsorted(sd, kll.query(0.5)) - 0.5 * data.size)
        assert err < 3 * 1.7 * data.size / 256

    def test_duplicates(self, rng):
        data = rng.integers(0, 5, size=100_000).astype(float)
        kll = consume(KLLSketch(k=128, seed=4), data, run_size=10_000)
        assert 0 <= kll.query(0.5) <= 4

    def test_rank_error_estimate_scales(self, rng):
        kll = consume(KLLSketch(k=100, seed=5), rng.uniform(size=10_000))
        assert kll.rank_error_estimate() == pytest.approx(1.7 * 10_000 / 100)

    def test_weights_conserve_count(self, rng):
        data = rng.uniform(size=123_457)
        kll = consume(KLLSketch(k=128, seed=6), data, run_size=10_000)
        _, weights = kll._weighted_items()
        assert weights.sum() == pytest.approx(data.size)
