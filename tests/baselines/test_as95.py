"""Tests for the [AS95]-style adaptive interval estimator."""

import numpy as np
import pytest

from repro.baselines import AdaptiveIntervalEstimator, consume
from repro.errors import ConfigError


class TestAdaptiveIntervalEstimator:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveIntervalEstimator(intervals=3)
        with pytest.raises(ConfigError):
            AdaptiveIntervalEstimator(intervals=10, split_factor=1.0)

    def test_memory_footprint(self):
        assert AdaptiveIntervalEstimator(intervals=100).memory_footprint == 201

    def test_small_stream_exact_from_buffer(self, rng):
        est = AdaptiveIntervalEstimator(intervals=50)
        data = rng.uniform(size=100)  # below the seeding threshold
        est.update(data)
        assert est.query(0.5) == pytest.approx(np.sort(data)[49], abs=1e-12)

    def test_uniform_accuracy(self, rng):
        data = rng.uniform(size=100_000)
        est = consume(AdaptiveIntervalEstimator(intervals=200), data, run_size=10_000)
        for phi in (0.1, 0.5, 0.9):
            assert abs(est.query(phi) - phi) < 0.01

    def test_range_extension(self, rng):
        """Values outside the seeded range must still be counted."""
        est = AdaptiveIntervalEstimator(intervals=10)
        est.update(rng.uniform(0.4, 0.6, size=5000))
        est.update(rng.uniform(0.0, 1.0, size=5000))
        assert est.n == 10_000
        assert 0.0 <= est.query(0.01) <= 0.45
        assert 0.55 <= est.query(0.99) <= 1.01

    def test_interval_count_stays_constant(self, rng):
        est = AdaptiveIntervalEstimator(intervals=32)
        for _ in range(10):
            est.update(rng.exponential(size=2000))
        assert est._counts.size == 32
        assert est._bounds.size == 33

    def test_counts_conserved(self, rng):
        est = AdaptiveIntervalEstimator(intervals=16)
        est.update(rng.uniform(size=5000))
        est.update(rng.uniform(size=5000))
        assert est._counts.sum() == pytest.approx(10_000)

    def test_skewed_data_degrades_gracefully(self, rng):
        """Heavy skew: still answers, still within the value range."""
        data = rng.pareto(1.2, size=50_000)
        est = consume(AdaptiveIntervalEstimator(intervals=64), data, run_size=5000)
        q = est.query(0.99)
        assert 0 <= q <= data.max()

    def test_sorted_arrival_shows_weakness(self, rng):
        """The failure mode OPAQ avoids: sorted arrival breaks the seeded
        boundaries (all later data lands in the last interval until the
        rebalancer catches up), hurting accuracy versus random arrival."""
        data = rng.uniform(size=50_000)
        sorted_est = consume(
            AdaptiveIntervalEstimator(intervals=64), np.sort(data), run_size=2000
        )
        random_est = consume(
            AdaptiveIntervalEstimator(intervals=64), data, run_size=2000
        )
        err_sorted = abs(sorted_est.query(0.5) - 0.5)
        err_random = abs(random_est.query(0.5) - 0.5)
        # Not asserting a strict ordering (the rebalancer may recover), but
        # sorted arrival must not be *better*, and the estimator must stay
        # within the observed range.
        assert err_sorted >= err_random - 0.01
