"""Tests for reservoir-sampling quantile estimation."""

import numpy as np
import pytest

from repro.baselines import RandomSamplingEstimator, consume
from repro.errors import ConfigError


class TestReservoir:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            RandomSamplingEstimator(capacity=0)

    def test_small_stream_is_exact(self, rng):
        data = rng.uniform(size=50)
        est = consume(RandomSamplingEstimator(capacity=100, seed=0), data)
        # Whole stream retained: quantiles are exact.
        assert est.query(0.5) == np.sort(data)[24]

    def test_uniform_inclusion_probability(self, rng):
        """Each element should survive with probability ~k/n."""
        n, k, trials = 400, 40, 150
        hits = np.zeros(n)
        data = np.arange(n, dtype=float)
        for t in range(trials):
            est = RandomSamplingEstimator(capacity=k, seed=t)
            # Feed in chunks to exercise the vectorised path.
            for i in range(0, n, 64):
                est.update(data[i : i + 64])
            kept = est._reservoir[: est._filled]
            hits[np.unique(kept).astype(int)] += 1
        rates = hits / trials
        # Expected inclusion rate k/n = 0.1; allow generous sampling noise,
        # checking front/middle/back thirds are all in a sane band.
        for part in np.array_split(rates, 3):
            assert 0.05 < part.mean() < 0.17

    def test_estimates_near_truth(self, rng):
        data = rng.uniform(size=100_000)
        est = consume(RandomSamplingEstimator(capacity=2000, seed=1), data, run_size=10_000)
        for phi in (0.1, 0.5, 0.9):
            assert abs(est.query(phi) - phi) < 0.05

    def test_memory_footprint(self):
        assert RandomSamplingEstimator(capacity=123).memory_footprint == 123

    def test_deterministic_given_seed(self, rng):
        data = rng.uniform(size=5000)
        a = consume(RandomSamplingEstimator(capacity=100, seed=9), data, run_size=500)
        b = consume(RandomSamplingEstimator(capacity=100, seed=9), data, run_size=500)
        assert a.query(0.5) == b.query(0.5)
