"""Tests for the [SD77] cell-midpoint estimator."""

import numpy as np
import pytest

from repro.baselines import CellMidpointEstimator, consume
from repro.errors import ConfigError


class TestCellMidpoint:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CellMidpointEstimator(1.0, 1.0, cells=10)
        with pytest.raises(ConfigError):
            CellMidpointEstimator(0.0, 1.0, cells=0)

    def test_good_prior_good_estimate(self, rng):
        data = rng.uniform(size=50_000)
        est = consume(CellMidpointEstimator(0.0, 1.0, cells=1000), data)
        for phi in (0.1, 0.5, 0.9):
            # half a cell (5e-4) plus empirical-CDF noise (~2e-3 at n=50k)
            assert abs(est.query(phi) - phi) < 5e-3

    def test_midpoint_error_half_cell(self, rng):
        data = rng.uniform(size=50_000)
        est = consume(CellMidpointEstimator(0.0, 1.0, cells=10), data)
        # With 10 cells the midpoint can be off by up to half a cell (0.05).
        assert abs(est.query(0.5) - 0.5) <= 0.05 + 1e-9

    def test_interpolation_tighter_than_midpoint(self, rng):
        data = rng.uniform(size=50_000)
        mid = consume(CellMidpointEstimator(0.0, 1.0, cells=10), data)
        interp = consume(
            CellMidpointEstimator(0.0, 1.0, cells=10, interpolate=True), data
        )
        assert abs(interp.query(0.5) - 0.5) <= abs(mid.query(0.5) - 0.5) + 1e-9

    def test_bad_prior_bad_estimate(self, rng):
        """The paper's criticism: a wrong a-priori range wrecks accuracy."""
        data = rng.uniform(0.0, 0.001, size=50_000)  # squeezed into one cell
        est = consume(CellMidpointEstimator(0.0, 1.0, cells=100), data)
        # True median 0.0005; the estimate is the first cell's midpoint.
        assert abs(est.query(0.5) - 0.0005) > 0.003

    def test_out_of_range_values_clamped_not_lost(self, rng):
        est = CellMidpointEstimator(0.0, 1.0, cells=10)
        est.update(np.array([-5.0, 0.5, 7.0]))
        assert est.n == 3
        assert est._counts.sum() == 3

    def test_memory_footprint(self):
        assert CellMidpointEstimator(0.0, 1.0, cells=64).memory_footprint == 64

    def test_skew_concentration_hurts(self, rng):
        """Zipf-like concentration in few cells degrades the estimate —
        the distribution dependence OPAQ is free of."""
        data = np.concatenate(
            [rng.uniform(0.0, 0.01, size=90_000), rng.uniform(0.0, 1.0, size=10_000)]
        )
        est = consume(CellMidpointEstimator(0.0, 1.0, cells=100), data)
        true = np.quantile(data, 0.5)
        # 90% of the mass shares one cell: the *relative* error is large
        # even though the cell is narrow in absolute terms.
        assert abs(est.query(0.5) - true) / true > 0.05
