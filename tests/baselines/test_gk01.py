"""Tests for the Greenwald-Khanna sketch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import GreenwaldKhanna, consume
from repro.errors import ConfigError


def worst_rank_error(data, sketch, phis):
    sd = np.sort(data)
    worst = 0
    for phi in phis:
        est = sketch.query(phi)
        lo = np.searchsorted(sd, est, side="left")
        hi = np.searchsorted(sd, est, side="right")
        target = int(np.ceil(phi * data.size))
        err = 0 if lo < target <= hi else min(abs(lo + 1 - target), abs(hi - target))
        worst = max(worst, err)
    return worst


class TestGreenwaldKhanna:
    def test_epsilon_validation(self):
        with pytest.raises(ConfigError):
            GreenwaldKhanna(epsilon=0.0)
        with pytest.raises(ConfigError):
            GreenwaldKhanna(epsilon=0.5)

    def test_guarantee_uniform(self, rng):
        data = rng.uniform(size=100_000)
        gk = consume(GreenwaldKhanna(epsilon=0.005), data, run_size=10_000)
        phis = np.arange(0.05, 1.0, 0.05)
        assert worst_rank_error(data, gk, phis) <= 0.005 * data.size

    def test_guarantee_duplicates(self, rng):
        data = rng.integers(0, 50, size=50_000).astype(float)
        gk = consume(GreenwaldKhanna(epsilon=0.01), data, run_size=5000)
        phis = np.arange(0.1, 1.0, 0.1)
        assert worst_rank_error(data, gk, phis) <= 0.01 * data.size

    def test_guarantee_sorted_arrival(self, rng):
        data = np.sort(rng.uniform(size=50_000))
        gk = consume(GreenwaldKhanna(epsilon=0.01), data, run_size=5000)
        phis = np.arange(0.1, 1.0, 0.1)
        assert worst_rank_error(data, gk, phis) <= 0.01 * data.size

    def test_compression_sublinear(self, rng):
        data = rng.uniform(size=200_000)
        gk = consume(GreenwaldKhanna(epsilon=0.001), data, run_size=20_000)
        # Theory: O((1/eps) * log(eps*n)) tuples = a few thousand here.
        assert gk.tuples < 10_000

    def test_rank_error_bound_property(self, rng):
        gk = consume(GreenwaldKhanna(epsilon=0.01), rng.uniform(size=1000))
        assert gk.rank_error_bound() == pytest.approx(10.0)

    def test_memory_footprint_tracks_tuples(self, rng):
        gk = consume(GreenwaldKhanna(epsilon=0.01), rng.uniform(size=10_000))
        assert gk.memory_footprint == 3 * gk.tuples

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=10,
            max_size=2000,
        )
    )
    def test_property_guarantee_holds(self, values):
        data = np.array(values, dtype=np.float64)
        gk = GreenwaldKhanna(epsilon=0.05)
        for i in range(0, data.size, 97):
            gk.update(data[i : i + 97])
        phis = [0.1, 0.5, 0.9]
        assert worst_rank_error(data, gk, phis) <= max(1, 0.05 * data.size)
