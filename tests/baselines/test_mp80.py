"""Tests for the Munro-Paterson multi-pass exact selector."""

import numpy as np
import pytest

from repro.baselines import MunroPatersonSelector
from repro.errors import ConfigError, EstimationError


class TestMunroPaterson:
    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MunroPatersonSelector(memory=4)

    def test_fits_in_memory_one_pass(self, rng):
        data = rng.uniform(size=1000)
        sel = MunroPatersonSelector(memory=2000)
        res = sel.select(data, 500)
        assert res.value == np.sort(data)[499]
        assert res.passes == 1

    def test_exact_when_data_exceeds_memory(self, rng):
        data = rng.uniform(size=50_000)
        sel = MunroPatersonSelector(memory=2000, run_size=5000)
        sd = np.sort(data)
        for rank in (1, 100, 25_000, 49_999, 50_000):
            res = sel.select(data, rank)
            assert res.value == sd[rank - 1]
            assert res.passes >= 2

    def test_two_passes_suffice_at_this_scale(self, rng):
        data = rng.uniform(size=100_000)
        sel = MunroPatersonSelector(memory=4000, run_size=10_000)
        res = sel.select(data, 50_000)
        assert res.passes == 2

    def test_heavy_duplicates(self, rng):
        data = rng.integers(0, 3, size=50_000).astype(float)
        sel = MunroPatersonSelector(memory=1000, run_size=5000)
        sd = np.sort(data)
        for rank in (1, 25_000, 50_000):
            assert sel.select(data, rank).value == sd[rank - 1]

    def test_all_equal(self):
        data = np.full(20_000, 3.14)
        sel = MunroPatersonSelector(memory=500, run_size=2000)
        assert sel.select(data, 10_000).value == 3.14

    def test_dataset_source(self, dataset_factory, rng):
        data = rng.uniform(size=20_000)
        ds = dataset_factory(data)
        sel = MunroPatersonSelector(memory=1000, run_size=2000)
        res = sel.select(ds, 10_000)
        assert res.value == np.sort(data)[9999]

    def test_quantile_helper(self, rng):
        data = rng.uniform(size=10_000)
        sel = MunroPatersonSelector(memory=1000, run_size=1000)
        res = sel.quantile(data, 0.5)
        assert res.value == np.sort(data)[4999]
        assert res.rank == 5000

    def test_rank_out_of_range(self, rng):
        sel = MunroPatersonSelector(memory=100)
        with pytest.raises(EstimationError):
            sel.select(rng.uniform(size=50), 51)
        with pytest.raises(EstimationError):
            sel.select(rng.uniform(size=50), 0)

    def test_two_giant_duplicate_bands(self):
        """The adversarial stall case: two values, each band > memory."""
        data = np.concatenate([np.full(30_000, 1.0), np.full(30_000, 2.0)])
        rng = np.random.default_rng(1)
        rng.shuffle(data)
        sel = MunroPatersonSelector(memory=500, run_size=5000)
        assert sel.select(data, 30_000).value == 1.0
        assert sel.select(data, 30_001).value == 2.0

    def test_three_band_middle_target(self):
        data = np.concatenate(
            [np.full(20_000, 1.0), np.full(20_000, 2.0), np.full(20_000, 3.0)]
        )
        rng = np.random.default_rng(2)
        rng.shuffle(data)
        sel = MunroPatersonSelector(memory=500, run_size=5000)
        assert sel.select(data, 30_000).value == 2.0
