"""Tests for the baseline streaming interface."""

import numpy as np
import pytest

from repro.baselines import RandomSamplingEstimator, consume
from repro.errors import ConfigError, EstimationError


class TestStreamingInterface:
    def test_n_tracks_consumed(self, rng):
        est = RandomSamplingEstimator(capacity=10, seed=0)
        est.update(rng.uniform(size=7))
        est.update(rng.uniform(size=5))
        assert est.n == 12

    def test_empty_chunk_noop(self):
        est = RandomSamplingEstimator(capacity=10, seed=0)
        est.update(np.empty(0))
        assert est.n == 0

    def test_2d_chunk_rejected(self, rng):
        est = RandomSamplingEstimator(capacity=10, seed=0)
        with pytest.raises(ConfigError):
            est.update(rng.uniform(size=(2, 2)))

    def test_query_before_data(self):
        est = RandomSamplingEstimator(capacity=10, seed=0)
        with pytest.raises(EstimationError):
            est.query(0.5)

    def test_query_many(self, rng):
        est = consume(RandomSamplingEstimator(capacity=100, seed=0), rng.uniform(size=1000))
        out = est.query_many([0.25, 0.75])
        assert out.shape == (2,)
        assert out[0] <= out[1]


class TestConsume:
    def test_array_source(self, rng):
        data = rng.uniform(size=1000)
        est = consume(RandomSamplingEstimator(capacity=50, seed=0), data)
        assert est.n == 1000

    def test_dataset_source(self, dataset_factory, rng):
        data = rng.uniform(size=1000)
        ds = dataset_factory(data)
        est = consume(RandomSamplingEstimator(capacity=50, seed=0), ds, run_size=300)
        assert est.n == 1000

    def test_iterable_source(self, rng):
        chunks = [rng.uniform(size=100) for _ in range(3)]
        est = consume(RandomSamplingEstimator(capacity=50, seed=0), iter(chunks))
        assert est.n == 300

    def test_returns_estimator(self, rng):
        est = RandomSamplingEstimator(capacity=5, seed=0)
        assert consume(est, rng.uniform(size=10)) is est
