"""Tests for the [GS90] recursive-median equi-depth partitioner."""

import numpy as np
import pytest

from repro.baselines import RecursiveMedianPartitioner
from repro.errors import ConfigError
from repro.metrics import quantile_rank


class TestRecursiveMedianPartitioner:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RecursiveMedianPartitioner(memory=4)
        part = RecursiveMedianPartitioner(memory=1000)
        with pytest.raises(ConfigError):
            part.partition(np.arange(10.0), q=1)

    def test_exact_dectile_boundaries(self, rng):
        data = rng.uniform(size=20_000)
        part = RecursiveMedianPartitioner(memory=1000, run_size=2000)
        result = part.partition(data, q=10)
        sd = np.sort(data)
        expected = [sd[quantile_rank(k / 10, data.size) - 1] for k in range(1, 10)]
        np.testing.assert_array_equal(result.boundaries, expected)
        assert result.selections == 9

    def test_median_only(self, rng):
        data = rng.uniform(size=5000)
        part = RecursiveMedianPartitioner(memory=500, run_size=500)
        result = part.partition(data, q=2)
        assert result.boundaries.tolist() == [np.sort(data)[2499]]
        assert result.selections == 1

    def test_pass_accounting_grows_with_q(self, rng):
        data = rng.uniform(size=20_000)
        part = RecursiveMedianPartitioner(memory=1000, run_size=2000)
        p2 = part.partition(data, q=2).passes
        p8 = part.partition(data, q=8).passes
        assert p8 > p2  # more selections, more sweeps

    def test_dataset_source(self, dataset_factory, rng):
        data = rng.uniform(size=10_000)
        ds = dataset_factory(data)
        part = RecursiveMedianPartitioner(memory=800, run_size=1000)
        result = part.partition(ds, q=4)
        sd = np.sort(data)
        expected = [sd[quantile_rank(k / 4, 10_000) - 1] for k in range(1, 4)]
        np.testing.assert_array_equal(result.boundaries, expected)

    def test_duplicates(self, rng):
        data = rng.integers(0, 10, size=20_000).astype(float)
        part = RecursiveMedianPartitioner(memory=1000, run_size=2000)
        result = part.partition(data, q=4)
        sd = np.sort(data)
        expected = [sd[quantile_rank(k / 4, data.size) - 1] for k in range(1, 4)]
        np.testing.assert_array_equal(result.boundaries, expected)
