"""Tests for the P² algorithm (Jain & Chlamtac)."""

import pytest

from repro.baselines import P2Estimator, P2SingleQuantile, consume
from repro.errors import ConfigError, EstimationError


class TestP2SingleQuantile:
    def test_fewer_than_five_observations(self):
        t = P2SingleQuantile(0.5)
        for x in (3.0, 1.0, 2.0):
            t.add(x)
        assert t.value() == 2.0

    def test_median_of_uniform(self, rng):
        t = P2SingleQuantile(0.5)
        for x in rng.uniform(size=20_000):
            t.add(float(x))
        assert abs(t.value() - 0.5) < 0.02

    def test_tail_quantile(self, rng):
        t = P2SingleQuantile(0.95)
        for x in rng.uniform(size=20_000):
            t.add(float(x))
        assert abs(t.value() - 0.95) < 0.02

    def test_normal_median(self, rng):
        t = P2SingleQuantile(0.5)
        for x in rng.normal(10.0, 2.0, size=20_000):
            t.add(float(x))
        assert abs(t.value() - 10.0) < 0.15

    def test_phi_validation(self):
        with pytest.raises(ConfigError):
            P2SingleQuantile(0.0)
        with pytest.raises(ConfigError):
            P2SingleQuantile(1.0)

    def test_value_before_data(self):
        with pytest.raises(EstimationError):
            P2SingleQuantile(0.5).value()

    def test_marker_heights_stay_sorted(self, rng):
        t = P2SingleQuantile(0.3)
        for x in rng.exponential(size=5000):
            t.add(float(x))
        q = t._heights
        assert all(q[i] <= q[i + 1] for i in range(4))


class TestP2Estimator:
    def test_tracks_multiple_fractions(self, rng):
        phis = [0.25, 0.5, 0.75]
        est = consume(P2Estimator(phis), rng.uniform(size=10_000), run_size=2000)
        for phi in phis:
            assert abs(est.query(phi) - phi) < 0.03

    def test_untracked_fraction_rejected(self, rng):
        est = consume(P2Estimator([0.5]), rng.uniform(size=100))
        with pytest.raises(EstimationError, match="not configured"):
            est.query(0.9)

    def test_needs_at_least_one_fraction(self):
        with pytest.raises(ConfigError):
            P2Estimator([])

    def test_memory_footprint_constant(self):
        assert P2Estimator([0.5]).memory_footprint == 15
        assert P2Estimator([0.1, 0.5, 0.9]).memory_footprint == 45
