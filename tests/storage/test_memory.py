"""Tests for the paper's memory model (r*s + m <= M)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.storage import MemoryModel


class TestValidate:
    def test_feasible_configuration(self):
        # n=1M, m=100k -> r=10 runs; 10*1000 + 100k = 110k <= 200k.
        MemoryModel(200_000).validate(1_000_000, 100_000, 1000)

    def test_infeasible_configuration(self):
        with pytest.raises(ConfigError, match="keys of memory"):
            MemoryModel(50_000).validate(1_000_000, 100_000, 1000)

    def test_sample_larger_than_run(self):
        with pytest.raises(ConfigError, match="cannot exceed run_size"):
            MemoryModel(1_000_000).validate(1000, 100, 200)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            MemoryModel(0)
        with pytest.raises(ConfigError):
            MemoryModel(100).validate(0, 10, 5)

    def test_footprint_formula(self):
        # ceil(100/30)=4 runs -> 4*5 + 30 = 50.
        assert MemoryModel(1000).footprint(100, 30, 5) == 50
        assert MemoryModel.required_capacity(100, 30, 5) == 50


class TestSuggest:
    def test_suggested_run_size_is_feasible(self):
        # The minimum possible footprint is ~2*sqrt(n*s) = 200k keys here,
        # so 250k is feasible but tight.
        model = MemoryModel(250_000)
        m = model.suggest(10_000_000, 1000)
        model.validate(10_000_000, m, 1000)

    def test_prefers_small_runs(self):
        model = MemoryModel(1_000_000)
        m = model.suggest(1_000_000, 100)
        # Anything smaller must be infeasible.
        if m > 100:
            assert model.footprint(1_000_000, m - 1, 100) > model.capacity or m == 100

    def test_data_fits_in_memory(self):
        model = MemoryModel(100_000)
        m = model.suggest(50_000, 1000)
        model.validate(50_000, m, 1000)

    def test_impossible_budget(self):
        with pytest.raises(ConfigError, match="no feasible run size"):
            MemoryModel(100).suggest(10_000_000, 90)

    def test_bad_sample_size(self):
        with pytest.raises(ConfigError):
            MemoryModel(100).suggest(1000, 0)

    @settings(max_examples=50)
    @given(
        n=st.integers(min_value=100, max_value=10_000_000),
        s=st.integers(min_value=1, max_value=2000),
        capacity=st.integers(min_value=100, max_value=1_000_000),
    )
    def test_property_suggestion_always_feasible_or_raises(self, n, s, capacity):
        model = MemoryModel(capacity)
        try:
            m = model.suggest(n, s)
        except ConfigError:
            return
        model.validate(n, m, s)


class TestMaxQuantiles:
    def test_matches_paper_order(self):
        # The paper: q <= O(M^2 / n).
        model = MemoryModel(10_000)
        q = model.max_quantiles(1_000_000)
        assert 0 < q <= 10_000**2 / 1_000_000

    def test_grows_with_memory(self):
        n = 1_000_000
        assert MemoryModel(20_000).max_quantiles(n) > MemoryModel(10_000).max_quantiles(n)

    def test_bad_n(self):
        with pytest.raises(ConfigError):
            MemoryModel(100).max_quantiles(0)
