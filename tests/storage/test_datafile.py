"""Tests for the on-disk dataset format."""

import struct

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.storage import DatasetWriter, DiskDataset


class TestRoundTrip:
    def test_create_open_read(self, tmp_path, rng):
        values = rng.uniform(size=1000)
        ds = DiskDataset.create(tmp_path / "d.opaq", values)
        assert ds.count == 1000
        np.testing.assert_array_equal(ds.read_all(), values)

    def test_int64_dtype(self, tmp_path):
        values = np.arange(10, dtype=np.int64)
        with DatasetWriter(tmp_path / "i.opaq", dtype=np.int64) as w:
            w.append(values)
        ds = DiskDataset.open(tmp_path / "i.opaq")
        assert ds.dtype == np.dtype("<i8")
        np.testing.assert_array_equal(ds.read_all(), values)

    def test_read_range(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(100, dtype=float))
        np.testing.assert_array_equal(
            ds.read_range(10, 5), np.arange(10, 15, dtype=float)
        )

    def test_read_range_bounds(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(10, dtype=float))
        with pytest.raises(DataError):
            ds.read_range(5, 6)
        with pytest.raises(DataError):
            ds.read_range(-1, 2)

    def test_iter_ranges(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(10, dtype=float))
        chunks = list(ds.iter_ranges(4))
        assert [c.size for c in chunks] == [4, 4, 2]
        np.testing.assert_array_equal(np.concatenate(chunks), np.arange(10))

    def test_iter_ranges_bad_chunk(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(4, dtype=float))
        with pytest.raises(ConfigError):
            list(ds.iter_ranges(0))

    def test_nbytes(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(10, dtype=float))
        assert ds.nbytes == 80


class TestWriter:
    def test_chunked_writes(self, tmp_path, rng):
        chunks = [rng.uniform(size=17) for _ in range(5)]
        with DatasetWriter(tmp_path / "d.opaq") as w:
            for c in chunks:
                w.append(c)
        ds = DiskDataset.open(tmp_path / "d.opaq")
        np.testing.assert_array_equal(ds.read_all(), np.concatenate(chunks))

    def test_close_returns_dataset(self, tmp_path):
        w = DatasetWriter(tmp_path / "d.opaq")
        w.append(np.array([1.0]))
        ds = w.close()
        assert ds.count == 1

    def test_double_close_idempotent(self, tmp_path):
        w = DatasetWriter(tmp_path / "d.opaq")
        w.append(np.array([1.0]))
        w.close()
        w.close()

    def test_append_after_close_rejected(self, tmp_path):
        w = DatasetWriter(tmp_path / "d.opaq")
        w.close()
        with pytest.raises(DataError):
            w.append(np.array([1.0]))

    def test_unsupported_dtype(self, tmp_path):
        with pytest.raises(ConfigError):
            DatasetWriter(tmp_path / "d.opaq", dtype=np.float32)

    def test_crashed_writer_leaves_invalid_file(self, tmp_path):
        """Failure injection: an exception mid-write must not leave a file
        that opens as a (short) valid dataset."""
        try:
            with DatasetWriter(tmp_path / "d.opaq") as w:
                w.append(np.arange(10, dtype=float))
                raise RuntimeError("power cut")
        except RuntimeError:
            pass
        with pytest.raises(DataError):
            DiskDataset.open(tmp_path / "d.opaq")


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            DiskDataset.open(tmp_path / "nope.opaq")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.opaq"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 16)
        with pytest.raises(DataError, match="bad magic"):
            DiskDataset.open(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.opaq"
        path.write_bytes(b"OPAQ")
        with pytest.raises(DataError, match="truncated"):
            DiskDataset.open(path)

    def test_truncated_payload(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(10, dtype=float))
        raw = ds.path.read_bytes()
        ds.path.write_bytes(raw[:-8])
        with pytest.raises(DataError, match="truncated or padded"):
            DiskDataset.open(ds.path)

    def test_padded_payload(self, tmp_path):
        ds = DiskDataset.create(tmp_path / "d.opaq", np.arange(10, dtype=float))
        with open(ds.path, "ab") as f:
            f.write(b"\x00" * 8)
        with pytest.raises(DataError, match="truncated or padded"):
            DiskDataset.open(ds.path)

    def test_bad_dtype_code(self, tmp_path):
        path = tmp_path / "odd.opaq"
        header = struct.Struct("<8s2sxxxxxxq").pack(b"OPAQDS01", b"f4", 0)
        path.write_bytes(header)
        with pytest.raises(DataError, match="unsupported dtype"):
            DiskDataset.open(path)


class TestInt64EndToEnd:
    def test_opaq_over_int_dataset(self, tmp_path, rng):
        """Integer keys flow through the whole pipeline (cast to float64
        in memory, which is lossless for the 2^53 range used here)."""
        from repro.core import OPAQ, OPAQConfig

        values = rng.integers(0, 2**40, size=20_000)
        with DatasetWriter(tmp_path / "i.opaq", dtype=np.int64) as w:
            w.append(values)
        ds = DiskDataset.open(tmp_path / "i.opaq")
        config = OPAQConfig(run_size=4000, sample_size=200)
        summary = OPAQ(config).summarize(ds)
        [b] = OPAQ(config).bounds(summary, [0.5])
        true = float(np.sort(values)[b.rank - 1])
        assert b.lower <= true <= b.upper
