"""Tests for run-at-a-time reading and the one-pass discipline."""

import numpy as np
import pytest

from repro.errors import ConfigError, SinglePassViolation
from repro.storage import RunReader


class TestRunIteration:
    def test_runs_cover_dataset_in_order(self, dataset_factory):
        ds = dataset_factory(np.arange(100, dtype=float))
        reader = RunReader(ds, run_size=30)
        runs = list(reader.runs())
        assert [r.size for r in runs] == [30, 30, 30, 10]
        np.testing.assert_array_equal(np.concatenate(runs), np.arange(100))

    def test_num_runs(self, dataset_factory):
        ds = dataset_factory(np.arange(100, dtype=float))
        assert RunReader(ds, run_size=30).num_runs == 4
        assert RunReader(ds, run_size=100).num_runs == 1
        assert RunReader(ds, run_size=1000).num_runs == 1

    def test_exact_division_no_ragged_run(self, dataset_factory):
        ds = dataset_factory(np.arange(90, dtype=float))
        runs = list(RunReader(ds, run_size=30))
        assert [r.size for r in runs] == [30, 30, 30]

    def test_bad_parameters(self, dataset_factory):
        ds = dataset_factory(np.arange(10, dtype=float))
        with pytest.raises(ConfigError):
            RunReader(ds, run_size=0)
        with pytest.raises(ConfigError):
            RunReader(ds, run_size=5, max_passes=0)


class TestSinglePassEnforcement:
    def test_second_pass_rejected(self, dataset_factory):
        ds = dataset_factory(np.arange(10, dtype=float))
        reader = RunReader(ds, run_size=5)
        list(reader.runs())
        with pytest.raises(SinglePassViolation):
            list(reader.runs())

    def test_budget_drawn_lazily(self, dataset_factory):
        """Creating the generator costs nothing; reading starts the pass."""
        ds = dataset_factory(np.arange(10, dtype=float))
        reader = RunReader(ds, run_size=5)
        gen = reader.runs()  # not consumed
        assert reader.stats.passes_started == 0
        next(gen)
        assert reader.stats.passes_started == 1

    def test_two_pass_budget(self, dataset_factory):
        ds = dataset_factory(np.arange(10, dtype=float))
        reader = RunReader(ds, run_size=5, max_passes=2)
        list(reader.runs())
        list(reader.runs())
        with pytest.raises(SinglePassViolation):
            list(reader.runs())

    def test_iter_protocol(self, dataset_factory):
        ds = dataset_factory(np.arange(10, dtype=float))
        reader = RunReader(ds, run_size=4)
        assert sum(r.size for r in reader) == 10


class TestIOAccounting:
    def test_stats_counted(self, dataset_factory):
        ds = dataset_factory(np.arange(100, dtype=float))
        reader = RunReader(ds, run_size=30)
        list(reader.runs())
        assert reader.stats.elements_read == 100
        assert reader.stats.bytes_read == 800
        assert reader.stats.read_ops == 4
        assert reader.stats.runs_read == 4
        assert reader.stats.passes_started == 1

    def test_partial_consumption_counts_partial(self, dataset_factory):
        ds = dataset_factory(np.arange(100, dtype=float))
        reader = RunReader(ds, run_size=30)
        gen = reader.runs()
        next(gen)
        next(gen)
        assert reader.stats.elements_read == 60
