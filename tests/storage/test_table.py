"""Tests for the columnar table layout."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.storage import TableDataset, TableWriter


class TestTableWriter:
    def test_roundtrip(self, tmp_path, rng):
        data = {
            "a": rng.uniform(size=100),
            "b": rng.normal(size=100),
        }
        table = TableDataset.create(tmp_path / "t", data)
        assert table.row_count == 100
        assert set(table.columns) == {"a", "b"}
        out = table.read_columns()
        np.testing.assert_array_equal(out["a"], data["a"])
        np.testing.assert_array_equal(out["b"], data["b"])

    def test_chunked_appends(self, tmp_path, rng):
        with TableWriter(tmp_path / "t", columns=["x", "y"]) as w:
            for _ in range(3):
                w.append({"x": rng.uniform(size=40), "y": rng.uniform(size=40)})
        table = TableDataset.open(tmp_path / "t")
        assert table.row_count == 120
        assert table.column("x").count == 120

    def test_ragged_chunk_rejected(self, tmp_path, rng):
        w = TableWriter(tmp_path / "t", columns=["x", "y"])
        with pytest.raises(ConfigError, match="ragged"):
            w.append({"x": rng.uniform(size=10), "y": rng.uniform(size=9)})

    def test_missing_column_rejected(self, tmp_path, rng):
        w = TableWriter(tmp_path / "t", columns=["x", "y"])
        with pytest.raises(ConfigError, match="cover exactly"):
            w.append({"x": rng.uniform(size=10)})

    def test_column_name_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            TableWriter(tmp_path / "t", columns=[])
        with pytest.raises(ConfigError):
            TableWriter(tmp_path / "t", columns=["a", "a"])
        with pytest.raises(ConfigError):
            TableWriter(tmp_path / "t", columns=["bad/name"])

    def test_crash_leaves_invalid_table(self, tmp_path, rng):
        try:
            with TableWriter(tmp_path / "t", columns=["x"]) as w:
                w.append({"x": rng.uniform(size=10)})
                raise RuntimeError("power cut")
        except RuntimeError:
            pass
        with pytest.raises(DataError):
            TableDataset.open(tmp_path / "t")


class TestTableDataset:
    def test_open_missing(self, tmp_path):
        with pytest.raises(DataError, match="not a table"):
            TableDataset.open(tmp_path / "nope")

    def test_unknown_column(self, tmp_path, rng):
        table = TableDataset.create(tmp_path / "t", {"a": rng.uniform(size=5)})
        with pytest.raises(DataError, match="no column"):
            table.column("z")

    def test_row_count_mismatch_detected(self, tmp_path, rng):
        table = TableDataset.create(tmp_path / "t", {"a": rng.uniform(size=5)})
        manifest = json.loads((table.path / "table.json").read_text())
        manifest["rows"] = 7
        (table.path / "table.json").write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="manifest says"):
            TableDataset.open(table.path)

    def test_columns_readable_in_runs(self, tmp_path, rng):
        from repro.storage import RunReader

        table = TableDataset.create(
            tmp_path / "t", {"a": rng.uniform(size=100)}
        )
        reader = RunReader(table.column("a"), run_size=30)
        assert sum(r.size for r in reader) == 100
