"""Tests for ground-truth quantile machinery."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.metrics import (
    dectile_fractions,
    equidepth_fractions,
    quantile_rank,
    rank_of_value,
    true_quantiles,
)


class TestQuantileRank:
    def test_paper_definition_integral(self):
        # phi*n integral: rank is exactly phi*n.
        assert quantile_rank(0.5, 100) == 50
        assert quantile_rank(0.1, 1000) == 100

    def test_ceil_for_non_integral(self):
        assert quantile_rank(0.5, 99) == 50  # ceil(49.5)

    def test_extremes(self):
        assert quantile_rank(1.0, 100) == 100
        assert quantile_rank(1e-9, 100) == 1

    def test_validation(self):
        with pytest.raises(EstimationError):
            quantile_rank(0.0, 10)
        with pytest.raises(EstimationError):
            quantile_rank(1.1, 10)
        with pytest.raises(EstimationError):
            quantile_rank(0.5, 0)


class TestFractions:
    def test_dectiles(self):
        np.testing.assert_allclose(
            dectile_fractions(), [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
        )

    def test_equidepth(self):
        np.testing.assert_allclose(equidepth_fractions(4), [0.25, 0.5, 0.75])

    def test_q_validation(self):
        with pytest.raises(EstimationError):
            equidepth_fractions(1)


class TestTrueQuantiles:
    def test_simple(self):
        data = np.arange(1, 11, dtype=float)  # 1..10 sorted
        values = true_quantiles(data, [0.1, 0.5, 1.0])
        assert values.tolist() == [1.0, 5.0, 10.0]

    def test_with_duplicates(self):
        data = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        assert true_quantiles(data, [0.5]).tolist() == [2.0]

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            true_quantiles(np.empty(0), [0.5])


class TestRankOfValue:
    def test_present_value(self):
        data = np.array([1.0, 2.0, 2.0, 3.0])
        lo, hi = rank_of_value(data, 2.0)
        assert (lo, hi) == (2, 3)

    def test_absent_value(self):
        data = np.array([1.0, 3.0])
        lo, hi = rank_of_value(data, 2.0)
        assert lo == hi + 1  # insertion point semantics

    def test_extremes(self):
        data = np.array([1.0, 2.0])
        assert rank_of_value(data, 0.0) == (1, 0)
        assert rank_of_value(data, 2.0) == (2, 2)
