"""Tests for the paper's RERA/RERL/RERN error rates."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.metrics import (
    dectile_fractions,
    rera_bound,
    rera_per_quantile,
    rera_point_estimates,
    rerl,
    rerl_bound,
    rern,
    rern_bound,
    score_bounds,
    true_quantiles,
)


@pytest.fixture
def tiny():
    """10 sorted values; dectile boundaries are simply the elements."""
    return np.arange(1.0, 11.0)


class TestRERA:
    def test_exact_bounds_score_zero(self, tiny):
        trues = true_quantiles(tiny, [0.5])
        r = rera_per_quantile(tiny, trues, trues, trues)
        assert r.tolist() == [0.0]

    def test_hand_computed(self, tiny):
        # Bounds [4, 7] around the median 5: Ne = 4 (values 4..7),
        # Nt = 1 (one copy of 5) -> (4-1)/10*100 = 30%.
        trues = np.array([5.0])
        r = rera_per_quantile(tiny, trues, np.array([4.0]), np.array([7.0]))
        assert r.tolist() == [30.0]

    def test_duplicates_of_true_not_charged(self):
        data = np.array([1.0, 5.0, 5.0, 5.0, 9.0])
        trues = np.array([5.0])
        r = rera_per_quantile(data, trues, np.array([5.0]), np.array([5.0]))
        assert r.tolist() == [0.0]

    def test_lower_above_upper_rejected(self, tiny):
        with pytest.raises(EstimationError):
            rera_per_quantile(tiny, np.array([5.0]), np.array([7.0]), np.array([4.0]))

    def test_point_estimates_displacement(self, tiny):
        trues = np.array([5.0])
        # Estimate 8: elements strictly between 5 and 8 are {6, 7} -> 20%.
        r = rera_point_estimates(tiny, trues, np.array([8.0]))
        assert r.tolist() == [20.0]

    def test_point_estimate_exact_is_zero(self, tiny):
        trues = np.array([5.0])
        assert rera_point_estimates(tiny, trues, trues).tolist() == [0.0]


class TestRERL:
    def test_perfect_bounds_score_zero(self, tiny):
        phis = np.array([0.3, 0.6])
        trues = true_quantiles(tiny, phis)
        assert rerl(tiny, trues, trues, trues) == 0.0

    def test_shifted_boundary(self, tiny):
        # True cuts at 3 and 6 -> intervals sizes (3, 3, 4).  Lower cuts at
        # 2 and 6 -> (2, 4, 4): worst interval error 1/3.
        trues = np.array([3.0, 6.0])
        lows = np.array([2.0, 6.0])
        result = rerl(tiny, trues, lows, trues)
        assert result == pytest.approx(100 / 3)

    def test_empty_true_interval_guarded(self):
        data = np.array([1.0, 1.0, 1.0, 9.0])
        trues = np.array([1.0, 1.0])  # middle interval empty
        assert rerl(data, trues, trues, trues) == 0.0


class TestRERN:
    def test_perfect_bounds_score_zero(self, tiny):
        phis = np.array([0.5])
        trues = true_quantiles(tiny, phis)
        assert rern(tiny, trues, trues, trues) == 0.0

    def test_hand_computed(self, tiny):
        # q defaults to len(trues)+1 = 2 -> interval n/q = 5.
        # Lower bound 3 vs true 5: elements strictly between = {4} -> 1/5.
        trues = np.array([5.0])
        assert rern(tiny, trues, np.array([3.0]), trues) == pytest.approx(40.0 / 2)

    def test_explicit_q(self, tiny):
        trues = np.array([5.0])
        assert rern(tiny, trues, np.array([3.0]), trues, q=10) == pytest.approx(100.0)

    def test_q_validation(self, tiny):
        with pytest.raises(EstimationError):
            rern(tiny, np.array([5.0]), np.array([5.0]), np.array([5.0]), q=1)


class TestAnalyticBounds:
    def test_values(self):
        assert rera_bound(1000) == pytest.approx(0.2)
        assert rerl_bound(10, 1000) == pytest.approx(1.0)
        assert rern_bound(10, 500) == pytest.approx(2.0)


class TestScoreBounds:
    def test_report_fields(self, rng):
        data = np.sort(rng.uniform(size=10_000))
        phis = dectile_fractions()
        trues = true_quantiles(data, phis)
        report = score_bounds(data, phis, trues, trues, sample_size=100)
        assert report.rera_max == 0.0
        assert report.rerl == 0.0
        assert report.rern == 0.0
        assert report.within_bounds()

    def test_within_bounds_needs_sample_size(self, rng):
        data = np.sort(rng.uniform(size=100))
        phis = np.array([0.5])
        trues = true_quantiles(data, phis)
        report = score_bounds(data, phis, trues, trues)
        with pytest.raises(EstimationError):
            report.within_bounds()

    def test_shape_mismatch_rejected(self, rng):
        data = np.sort(rng.uniform(size=100))
        with pytest.raises(EstimationError):
            rera_per_quantile(data, np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0]))

    def test_empty_data_rejected(self):
        with pytest.raises(EstimationError):
            rera_per_quantile(np.empty(0), np.array([1.0]), np.array([1.0]), np.array([1.0]))
