"""Tier-1 gate: no dangling cross-references in the docs tree.

``tools/check_docs_links.py`` (also the CI ``docs-check`` job) verifies
every internal markdown link and anchor in ``README.md`` + ``docs/*.md``.
The first tests here hold the checker itself to its contract on
synthetic trees — a checker that silently checks nothing would pass the
real tree forever.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs_links import (  # noqa: E402
    anchors_in,
    check_file,
    default_targets,
    slugify,
)


def test_slugify_matches_github_rules():
    assert slugify("The SPMD contract") == "the-spmd-contract"
    assert slugify("Reading speed-up, scale-up and size-up") == (
        "reading-speed-up-scale-up-and-size-up"
    )
    # Code spans keep their text; stray punctuation is dropped.
    assert slugify("The committed `BENCH_*.json` files") == (
        "the-committed-bench_json-files"
    )


def test_duplicate_headings_get_numbered_anchors(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("# Setup\n\n## Setup\n\n### Setup\n")
    assert anchors_in(doc) == {"setup", "setup-1", "setup-2"}


def test_broken_file_link_is_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [other](missing.md)\n")
    problems = check_file(doc, tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_dangling_anchor_is_reported(tmp_path):
    target = tmp_path / "target.md"
    target.write_text("# Real Heading\n")
    doc = tmp_path / "doc.md"
    doc.write_text("see [t](target.md#real-heading) and [x](target.md#nope)\n")
    problems = check_file(doc, tmp_path)
    assert len(problems) == 1
    assert "nope" in problems[0]


def test_links_inside_code_fences_are_ignored(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```\n[not a link](missing.md)\n```\n")
    assert check_file(doc, tmp_path) == []


def test_escaping_the_repository_is_reported(tmp_path):
    sub = tmp_path / "docs"
    sub.mkdir()
    doc = sub / "doc.md"
    doc.write_text("see [up](../../outside.md)\n")
    assert any(
        "escapes" in p for p in check_file(doc, tmp_path)
    )


def test_repo_docs_have_no_dangling_references():
    """The real gate: README + docs/*.md resolve completely."""
    problems = []
    for path in default_targets(REPO_ROOT):
        problems.extend(check_file(path, REPO_ROOT))
    assert problems == [], "\n".join(problems)


def test_docs_tree_is_nonempty():
    # A glob typo must not turn the gate into a vacuous pass.
    targets = default_targets(REPO_ROOT)
    assert len(targets) >= 8
    names = {p.name for p in targets}
    assert {"README.md", "parallel.md", "benchmarks.md"} <= names


@pytest.mark.parametrize("page", ["parallel.md", "benchmarks.md"])
def test_new_docs_are_linked_from_readme(page):
    readme = (REPO_ROOT / "README.md").read_text()
    assert f"docs/{page}" in readme
