"""Tier-1 gate: no dangling cross-references in the docs tree.

``tools/check_docs_links.py`` (also the CI ``docs-check`` job) verifies
every internal markdown link and anchor in ``README.md`` + ``docs/*.md``.
The first tests here hold the checker itself to its contract on
synthetic trees — a checker that silently checks nothing would pass the
real tree forever.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs_links import (  # noqa: E402
    anchors_in,
    check_engine_catalogue,
    check_file,
    check_rule_catalogue,
    default_targets,
    registered_codes,
    slugify,
)


def test_slugify_matches_github_rules():
    assert slugify("The SPMD contract") == "the-spmd-contract"
    assert slugify("Reading speed-up, scale-up and size-up") == (
        "reading-speed-up-scale-up-and-size-up"
    )
    # Code spans keep their text; stray punctuation is dropped.
    assert slugify("The committed `BENCH_*.json` files") == (
        "the-committed-bench_json-files"
    )


def test_duplicate_headings_get_numbered_anchors(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("# Setup\n\n## Setup\n\n### Setup\n")
    assert anchors_in(doc) == {"setup", "setup-1", "setup-2"}


def test_broken_file_link_is_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [other](missing.md)\n")
    problems = check_file(doc, tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_dangling_anchor_is_reported(tmp_path):
    target = tmp_path / "target.md"
    target.write_text("# Real Heading\n")
    doc = tmp_path / "doc.md"
    doc.write_text("see [t](target.md#real-heading) and [x](target.md#nope)\n")
    problems = check_file(doc, tmp_path)
    assert len(problems) == 1
    assert "nope" in problems[0]


def test_links_inside_code_fences_are_ignored(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```\n[not a link](missing.md)\n```\n")
    assert check_file(doc, tmp_path) == []


def test_escaping_the_repository_is_reported(tmp_path):
    sub = tmp_path / "docs"
    sub.mkdir()
    doc = sub / "doc.md"
    doc.write_text("see [up](../../outside.md)\n")
    assert any(
        "escapes" in p for p in check_file(doc, tmp_path)
    )


def test_repo_docs_have_no_dangling_references():
    """The real gate: README + docs/*.md resolve completely."""
    problems = []
    for path in default_targets(REPO_ROOT):
        problems.extend(check_file(path, REPO_ROOT))
    assert problems == [], "\n".join(problems)


def test_docs_tree_is_nonempty():
    # A glob typo must not turn the gate into a vacuous pass.
    targets = default_targets(REPO_ROOT)
    assert len(targets) >= 8
    names = {p.name for p in targets}
    assert {"README.md", "parallel.md", "benchmarks.md"} <= names


@pytest.mark.parametrize("page", ["parallel.md", "benchmarks.md"])
def test_new_docs_are_linked_from_readme(page):
    readme = (REPO_ROOT / "README.md").read_text()
    assert f"docs/{page}" in readme


def _rule_tree(tmp_path, doc_codes, src_codes):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "static_analysis.md").write_text(
        "# catalogue\n\n" + " ".join(doc_codes) + "\n", encoding="utf-8"
    )
    rules = tmp_path / "src" / "repro" / "analysis"
    rules.mkdir(parents=True)
    body = "\n\n".join(
        f'class R{code}:\n    code = "{code}"' for code in src_codes
    )
    (rules / "rules_x.py").write_text(body + "\n", encoding="utf-8")


def test_undocumented_rule_code_is_reported(tmp_path):
    _rule_tree(tmp_path, doc_codes=["OPQ101"], src_codes=["OPQ101", "OPQ251"])
    problems = check_rule_catalogue(tmp_path)
    assert len(problems) == 1
    assert "OPQ251" in problems[0] and "never documented" in problems[0]


def test_phantom_documented_code_is_reported(tmp_path):
    _rule_tree(tmp_path, doc_codes=["OPQ101", "OPQ999"], src_codes=["OPQ101"])
    problems = check_rule_catalogue(tmp_path)
    assert len(problems) == 1
    assert "OPQ999" in problems[0] and "no rule module" in problems[0]


def test_registered_codes_reads_without_importing_repro(tmp_path):
    # The docs-check CI job has no dependencies installed: the scan must
    # be textual.  A module whose import would explode still counts.
    rules = tmp_path / "src" / "repro" / "analysis"
    rules.mkdir(parents=True)
    (rules / "rules_broken.py").write_text(
        'import does_not_exist\n\nclass R:\n    code = "OPQ123"\n',
        encoding="utf-8",
    )
    assert registered_codes(tmp_path) == {"OPQ123"}


def test_repo_rule_catalogue_is_in_sync():
    """The real gate: every registered OPQ code is documented and every
    documented code exists — including the OPQ25x/OPQ75x families."""
    assert check_rule_catalogue(REPO_ROOT) == []
    codes = registered_codes(REPO_ROOT)
    assert {"OPQ251", "OPQ252", "OPQ253", "OPQ751", "OPQ752"} <= codes


def _engine_tree(tmp_path, doc_body, engines=("opaq", "kll")):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "portfolio.md").write_text(
        doc_body, encoding="utf-8"
    )
    pkg = tmp_path / "src" / "repro" / "portfolio"
    pkg.mkdir(parents=True)
    specs = "\n".join(
        f'    "{name}": EngineSpec(\n'
        f'        summary_magic="{name.upper()}SUM",\n'
        "    ),"
        for name in engines
    )
    (pkg / "__init__.py").write_text(
        "ENGINES = {\n" + specs + "\n}\n\n"
        'ENGINE_POLICIES = {\n    "mergeable-sketch": "kll",\n}\n',
        encoding="utf-8",
    )


_FULL_DOC = (
    "# catalogue\n\n"
    "| engine | magic |\n|---|---|\n"
    "| `opaq` | `OPAQSUM` |\n| `kll` | `KLLSUM` |\n\n"
    "policy `mergeable-sketch` picks kll\n"
)


def test_engine_catalogue_in_sync_passes(tmp_path):
    _engine_tree(tmp_path, _FULL_DOC)
    assert check_engine_catalogue(tmp_path) == []


def test_undocumented_engine_is_reported(tmp_path):
    _engine_tree(tmp_path, _FULL_DOC, engines=("opaq", "kll", "gk"))
    problems = check_engine_catalogue(tmp_path)
    assert any("'gk'" in p and "no catalogue-table row" in p for p in problems)
    # Its magic is missing from the doc too.
    assert any("GKSUM" in p for p in problems)


def test_phantom_catalogue_row_is_reported(tmp_path):
    _engine_tree(
        tmp_path, _FULL_DOC + "| `quantum` | `QSUM` |\n"
    )
    problems = check_engine_catalogue(tmp_path)
    assert len(problems) == 1
    assert "'quantum'" in problems[0] and "does not define" in problems[0]


def test_unmentioned_policy_alias_is_reported(tmp_path):
    _engine_tree(tmp_path, _FULL_DOC.replace("`mergeable-sketch`", "merging"))
    problems = check_engine_catalogue(tmp_path)
    assert len(problems) == 1
    assert "mergeable-sketch" in problems[0]


def test_repo_engine_catalogue_is_in_sync():
    """The real gate: ENGINES, the policy aliases and the archive magics
    all appear in docs/portfolio.md, and no phantom rows exist."""
    assert check_engine_catalogue(REPO_ROOT) == []
