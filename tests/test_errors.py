"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigError,
    DataError,
    EstimationError,
    ReproError,
    SinglePassViolation,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigError, DataError, EstimationError, SinglePassViolation):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        """Config and data errors double as ValueError so generic callers
        can catch them idiomatically."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(DataError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(SinglePassViolation, RuntimeError)
        assert issubclass(EstimationError, RuntimeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SinglePassViolation("second pass")
