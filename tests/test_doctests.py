"""Run every docstring example shipped in the library.

Docstring examples are API documentation users copy-paste; they must
execute.  This walks the whole :mod:`repro` package so a new module's
examples are covered automatically.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("name", sorted(_all_modules()))
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"
